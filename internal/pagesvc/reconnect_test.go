package pagesvc

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"revelation/internal/disk"
	"revelation/internal/leakcheck"
	"revelation/internal/metrics"
	"revelation/internal/qtrace"
	"revelation/internal/trace"
)

// TestReconnectDeterministicIDsNoDoubleCount severs the primary
// connection in the middle of a concurrent read pipeline and checks the
// two properties the reconnect path must preserve:
//
//  1. Request ids are allocated once per logical operation, so retries
//     and re-sends after the reconnect reuse their id — the final id
//     counter equals Dial's info call plus one per logical read, no
//     matter how many wire attempts the sever forced.
//  2. Sends are never double-counted across the accounting legs: the
//     span counters, the client's own counters, the registry, and the
//     trace replay all agree exactly, retries included.
func TestReconnectDeterministicIDsNoDoubleCount(t *testing.T) {
	goroutines := leakcheck.Snapshot()

	const pages = 32
	sim := disk.New(pages)
	buf := make([]byte, sim.PageSize())
	for p := 0; p < pages; p++ {
		for j := range buf {
			buf[j] = byte(p)
		}
		if err := sim.WritePage(disk.PageID(p), buf); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer([]disk.Device{sim}, ServerConfig{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reg := metrics.NewRegistry()
	col := trace.NewCollector()
	c, err := Dial(ClientConfig{
		Primary:  addr,
		Dev:      DataDev,
		Retry:    disk.DefaultRetryPolicy,
		Tracer:   trace.New(col),
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	before := reg.Snapshot() // excludes Dial's info round trip

	qc := qtrace.NewCollector(2)
	qt, root := qc.Begin("reconnect-pipeline")
	ctx := qtrace.With(context.Background(), root)

	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	failures := make(chan error, workers)
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rbuf := make([]byte, c.PageSize())
			<-start
			for i := 0; i < perWorker; i++ {
				p := disk.PageID((w*perWorker + i) % pages)
				if err := c.ReadPageCtx(ctx, p, rbuf); err != nil {
					failures <- err
					return
				}
				if rbuf[0] != byte(p) {
					failures <- errors.New("read returned wrong page image")
					return
				}
			}
		}(w)
	}
	close(start)

	// Kill the live primary connection while reads are in flight. Every
	// pending request gets an error response; the retry policy re-sends
	// it over the fresh connection under the same request id.
	time.Sleep(2 * time.Millisecond)
	c.primary.mu.Lock()
	cc := c.primary.conn
	c.primary.mu.Unlock()
	if cc != nil {
		cc.fail(netErr("test", errors.New("injected sever")))
	}

	wg.Wait()
	qc.Finish(qt, "ok", nil)
	close(failures)
	for err := range failures {
		t.Fatalf("read failed despite retry policy: %v", err)
	}
	if got := c.reconnects.Value(); got < 1 {
		t.Fatalf("reconnects = %d, want at least 1", got)
	}

	// Property 1: id allocation is per logical operation. Dial's info
	// call took id 1; each of the workers*perWorker reads took exactly
	// one more, regardless of retries.
	c.mu.Lock()
	lastID := c.reqID
	c.mu.Unlock()
	if want := uint64(1 + workers*perWorker); lastID != want {
		t.Errorf("final request id %d, want %d: retries must not allocate fresh ids", lastID, want)
	}

	// Property 2: the four send accountings agree. All post-Dial traffic
	// is attributed, so the span total, the registry delta, and the
	// qid-attributed replay all describe the same wire activity.
	total := qt.Total()
	delta := reg.Snapshot().Delta(before)
	var attributed []trace.Event
	for _, e := range col.Events() {
		if e.QID != 0 {
			attributed = append(attributed, e)
		}
	}
	rep := trace.ReplayEvents(attributed)
	if got := delta.Value("asm_net_sends_total", "dev", "net0"); got != total.NetSends {
		t.Errorf("span sends %d != registry sends %d", total.NetSends, got)
	}
	if int64(rep.NetSends) != total.NetSends {
		t.Errorf("replay sends %d != span sends %d", rep.NetSends, total.NetSends)
	}
	if c.sends.Value() != 1+total.NetSends { // +1 for Dial's info
		t.Errorf("client sends %d != info + span sends %d", c.sends.Value(), 1+total.NetSends)
	}
	if got := delta.Value("asm_net_recvs_total", "dev", "net0"); got != total.NetRecvs {
		t.Errorf("span recvs %d != registry recvs %d", total.NetRecvs, got)
	}
	if int64(rep.NetRecvs) != total.NetRecvs {
		t.Errorf("replay recvs %d != span recvs %d", rep.NetRecvs, total.NetRecvs)
	}
	// The sever forced at least one retry, so sends must exceed the
	// logical reads — and the replay sees those extra sends too.
	if total.NetSends <= workers*perWorker {
		t.Errorf("sends %d not above %d logical reads: sever produced no retries", total.NetSends, workers*perWorker)
	}

	c.Close()
	srv.Close()
	leakcheck.CheckWithin(t, goroutines, 2*time.Second)
}
