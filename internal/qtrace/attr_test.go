// Per-query attribution acceptance tests: for a seeded multi-query
// workload, three independent accountings of each query's work must
// agree exactly — the sum of its span counters, the qid-filtered trace
// replay, and the device/pool/registry deltas. Verified over both the
// local in-memory backend and the networked page service (client and
// server side), plus a hedging run where replica races must not
// double-count.
package qtrace_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"revelation/internal/assembly"
	"revelation/internal/disk"
	"revelation/internal/gen"
	"revelation/internal/metrics"
	"revelation/internal/pagesvc"
	"revelation/internal/qtrace"
	"revelation/internal/trace"
	"revelation/internal/volcano"
)

// runQueries assembles every root K times, each pass as its own traced
// query, and returns the collector holding the K finished traces.
func runQueries(t *testing.T, db *gen.Database, k int, tr *trace.Tracer) *qtrace.Collector {
	t.Helper()
	qc := qtrace.NewCollector(2 * k)
	for i := 0; i < k; i++ {
		qt, root := qc.Begin(fmt.Sprintf("q%d", i))
		ctx := qtrace.With(context.Background(), root)
		op := assembly.New(volcano.FromOIDs(db.Roots), db.Store, db.Template,
			assembly.Options{Window: 8, Scheduler: assembly.Elevator, Tracer: tr})
		items, err := volcano.DrainCtx(ctx, op)
		qc.Finish(qt, "ok", err)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if len(items) != len(db.Roots) {
			t.Fatalf("query %d assembled %d of %d", i, len(items), len(db.Roots))
		}
	}
	return qc
}

// quiesce readies a built database for a read-only measured phase:
// nothing dirty, nothing resident, stats at zero.
func quiesce(t *testing.T, db *gen.Database) {
	t.Helper()
	if err := db.Pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := db.Pool.EvictAll(); err != nil {
		t.Fatal(err)
	}
	db.Pool.ResetStats()
}

func TestPerQueryAttributionLocal(t *testing.T) {
	db, err := gen.Build(gen.Config{
		NumComplexObjects: 80,
		Clustering:        gen.Unclustered,
		BufferPages:       128,
		Seed:              8,
	})
	if err != nil {
		t.Fatal(err)
	}
	quiesce(t, db)

	// Tracers attach after the build, so every event in the stream
	// belongs to the measured queries.
	col := trace.NewCollector()
	tr := trace.New(col)
	db.Pool.SetTracer(tr)
	db.Device.(disk.TracerSetter).SetTracer(tr)
	devBefore := db.Device.Stats()

	const k = 4
	qc := runQueries(t, db, k, tr)

	// Every counter-bearing event must carry a qid; housekeeping kinds
	// (unfix, evict) are deliberately unattributed and not compared.
	attributed := map[string]bool{
		trace.KindRead: true, trace.KindHit: true, trace.KindMiss: true,
		trace.KindFetch: true, trace.KindLink: true,
	}
	events := col.Events()
	for _, e := range events {
		if attributed[e.Kind] && e.QID == 0 {
			t.Fatalf("unattributed %s event in measured phase: %+v", e.Kind, e)
		}
	}

	// Leg 1 vs leg 2: span sums against device and pool deltas.
	sum := qc.TotalAll()
	dev := db.Device.Stats().Sub(devBefore)
	pool := db.Pool.Stats()
	if sum.Reads != dev.Reads {
		t.Errorf("span reads %d != device reads %d", sum.Reads, dev.Reads)
	}
	if sum.SeekPages != dev.SeekReads {
		t.Errorf("span seek pages %d != device read-seek %d", sum.SeekPages, dev.SeekReads)
	}
	if sum.Hits != pool.Hits {
		t.Errorf("span hits %d != pool hits %d", sum.Hits, pool.Hits)
	}
	if sum.Misses != pool.Faults {
		t.Errorf("span misses %d != pool faults %d", sum.Misses, pool.Faults)
	}

	// Leg 3: the global trace replay.
	rep := trace.ReplayEvents(events)
	if sum.Reads != rep.Reads || sum.SeekPages != rep.SeekReads {
		t.Errorf("span disk totals (%d reads, %d seek) != replay (%d, %d)",
			sum.Reads, sum.SeekPages, rep.Reads, rep.SeekReads)
	}
	if sum.Hits != rep.Hits || sum.Misses != rep.Misses {
		t.Errorf("span pool totals (%d, %d) != replay (%d, %d)", sum.Hits, sum.Misses, rep.Hits, rep.Misses)
	}
	if int(sum.Fetches) != rep.Fetched || int(sum.Links) != rep.Links {
		t.Errorf("span assembly totals (%d fetches, %d links) != replay (%d, %d)",
			sum.Fetches, sum.Links, rep.Fetched, rep.Links)
	}

	// And per query: each trace's counters equal its qid-filtered
	// replay, exactly.
	traces := qc.Completed()
	if len(traces) != k {
		t.Fatalf("collector holds %d traces, want %d", len(traces), k)
	}
	for _, qt := range traces {
		total := qt.Total()
		pq := trace.ReplayEvents(trace.FilterQuery(events, qt.QID))
		if total.Reads != pq.Reads || total.SeekPages != pq.SeekReads {
			t.Errorf("qid %d: span disk (%d reads, %d seek) != replay (%d, %d)",
				qt.QID, total.Reads, total.SeekPages, pq.Reads, pq.SeekReads)
		}
		if total.Hits != pq.Hits || total.Misses != pq.Misses {
			t.Errorf("qid %d: span pool (%d, %d) != replay (%d, %d)",
				qt.QID, total.Hits, total.Misses, pq.Hits, pq.Misses)
		}
		if int(total.Fetches) != pq.Fetched || int(total.Links) != pq.Links {
			t.Errorf("qid %d: span assembly (%d, %d) != replay (%d, %d)",
				qt.QID, total.Fetches, total.Links, pq.Fetched, pq.Links)
		}
		if qt.Truncated() != 0 {
			t.Errorf("qid %d: %d spans truncated in a small workload", qt.QID, qt.Truncated())
		}
	}

	// The first (cold) query misses; later ones run against a warm pool
	// — attribution must reflect that, not split evenly.
	if first, last := traces[0].Total(), traces[k-1].Total(); first.Misses <= last.Misses {
		t.Errorf("cold query misses (%d) should exceed warm query misses (%d)", first.Misses, last.Misses)
	}
}

func TestPerQueryAttributionPagesvc(t *testing.T) {
	sim := disk.New(0)
	serverQC := qtrace.NewCollector(0)
	srv := pagesvc.NewServer([]disk.Device{sim}, pagesvc.ServerConfig{QTrace: serverQC})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reg := metrics.NewRegistry()
	col := trace.NewCollector()
	tr := trace.New(col)
	client, err := pagesvc.Dial(pagesvc.ClientConfig{
		Primary:  addr,
		Dev:      pagesvc.DataDev,
		Retry:    disk.DefaultRetryPolicy,
		Tracer:   tr,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// The database is built straight over the network client; the build
	// traffic carries qid 0 and creates no server-side traces.
	// A pool far smaller than the database keeps every query faulting,
	// so each qid crosses the wire and rebuilds a server-side trace.
	db, err := gen.Build(gen.Config{
		NumComplexObjects: 60,
		Clustering:        gen.Unclustered,
		BufferPages:       24,
		Seed:              8,
		Device:            client,
	})
	if err != nil {
		t.Fatal(err)
	}
	quiesce(t, db)
	client.ResetStats()
	client.SetTracer(tr)
	if n := len(serverQC.Active()) + len(serverQC.Completed()); n != 0 {
		t.Fatalf("build traffic created %d server-side traces", n)
	}
	simBefore := sim.Stats()
	before := reg.Snapshot()

	const k = 3
	qc := runQueries(t, db, k, tr)

	// The net tracer is fixed at Dial, so the stream also holds the
	// build traffic — all of it qid 0. The measured phase is exactly the
	// attributed events.
	var events []trace.Event
	for _, e := range col.Events() {
		if e.QID != 0 {
			events = append(events, e)
		}
	}
	sum := qc.TotalAll()
	delta := reg.Snapshot().Delta(before)

	// Client-side three-way: span sums == registry delta == replay, and
	// the wire is clean (every send answered, no timeouts).
	if got := delta.Value("asm_net_sends_total", "dev", "net0"); got != sum.NetSends {
		t.Errorf("span sends %d != registry sends %d", sum.NetSends, got)
	}
	if got := delta.Value("asm_net_recvs_total", "dev", "net0"); got != sum.NetRecvs {
		t.Errorf("span recvs %d != registry recvs %d", sum.NetRecvs, got)
	}
	if sum.NetSends != sum.NetRecvs || sum.NetTimeouts != 0 {
		t.Errorf("wire not clean: %d sends, %d recvs, %d timeouts", sum.NetSends, sum.NetRecvs, sum.NetTimeouts)
	}
	rep := trace.ReplayEvents(events)
	if rep.NetSends != sum.NetSends || rep.NetRecvs != sum.NetRecvs {
		t.Errorf("replay net (%d, %d) != span net (%d, %d)", rep.NetSends, rep.NetRecvs, sum.NetSends, sum.NetRecvs)
	}
	// Every pool miss is exactly one remote read, accounted at the
	// client's local head.
	if sum.Misses != sum.Reads {
		t.Errorf("span misses %d != span (client-side) reads %d", sum.Misses, sum.Reads)
	}
	if sum.NetSends != sum.Reads {
		t.Errorf("span sends %d != span reads %d (no retries or hedges expected)", sum.NetSends, sum.Reads)
	}

	// Per query, against the qid-filtered replay.
	for _, qt := range qc.Completed() {
		total := qt.Total()
		pq := trace.ReplayEvents(trace.FilterQuery(events, qt.QID))
		if total.NetSends != pq.NetSends || total.NetRecvs != pq.NetRecvs {
			t.Errorf("qid %d: span net (%d, %d) != replay (%d, %d)",
				qt.QID, total.NetSends, total.NetRecvs, pq.NetSends, pq.NetRecvs)
		}
		if total.Reads != pq.Reads {
			t.Errorf("qid %d: span reads %d != replay reads %d", qt.QID, total.Reads, pq.Reads)
		}
	}

	// Server side: the propagated qids rebuilt matching traces, and the
	// server's span sums equal the physical reads the backing device
	// performed for the measured phase.
	serverSum := serverQC.TotalAll()
	simDelta := sim.Stats().Sub(simBefore)
	if serverSum.Reads != simDelta.Reads {
		t.Errorf("server span reads %d != backing device reads %d", serverSum.Reads, simDelta.Reads)
	}
	if serverSum.Reads != sum.Misses {
		t.Errorf("server span reads %d != client misses %d", serverSum.Reads, sum.Misses)
	}
	clientQIDs := map[uint64]bool{}
	for _, qt := range qc.Completed() {
		clientQIDs[qt.QID] = true
	}
	remote := append(serverQC.Active(), serverQC.Completed()...)
	if len(remote) != k {
		t.Fatalf("server holds %d remote traces, want %d", len(remote), k)
	}
	for _, rt := range remote {
		if !rt.Remote {
			t.Errorf("server trace qid %d not marked remote", rt.QID)
		}
		if !clientQIDs[rt.QID] {
			t.Errorf("server trace qid %d unknown to the client", rt.QID)
		}
	}
}

// TestHedgeAttribution drives reads through a stalling primary with a
// clean replica so a deterministic fraction of them hedge, then holds
// the hedge accounting to the same three-way standard: span counters ==
// qid-filtered replay == registry delta, with every send eventually
// answered (a hedge's losing leg still completes).
func TestHedgeAttribution(t *testing.T) {
	const pages = 64
	prim := disk.New(pages)
	repl := disk.New(pages)
	img := make([]byte, prim.PageSize())
	for p := 0; p < pages; p++ {
		for j := range img {
			img[j] = byte(p * 3)
		}
		if err := prim.WritePage(disk.PageID(p), img); err != nil {
			t.Fatal(err)
		}
		if err := repl.WritePage(disk.PageID(p), img); err != nil {
			t.Fatal(err)
		}
	}
	slow := disk.NewFaulty(prim, disk.FaultConfig{Seed: 42, StallRate: 0.5, Stall: 20 * time.Millisecond})
	primSrv := pagesvc.NewServer([]disk.Device{slow}, pagesvc.ServerConfig{})
	primAddr, err := primSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer primSrv.Close()
	replSrv := pagesvc.NewServer([]disk.Device{repl}, pagesvc.ServerConfig{})
	replAddr, err := replSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer replSrv.Close()

	reg := metrics.NewRegistry()
	col := trace.NewCollector()
	tr := trace.New(col)
	client, err := pagesvc.Dial(pagesvc.ClientConfig{
		Primary:    primAddr,
		Replicas:   []string{replAddr},
		Dev:        pagesvc.DataDev,
		HedgeAfter: 2 * time.Millisecond,
		Retry:      disk.DefaultRetryPolicy,
		Tracer:     tr,
		Registry:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.SetTracer(tr)
	before := reg.Snapshot()

	qc := qtrace.NewCollector(4)
	qt, root := qc.Begin("hedged-scan")
	ctx := qtrace.With(context.Background(), root)
	buf := make([]byte, client.PageSize())
	for p := 0; p < pages; p++ {
		if err := client.ReadPageCtx(ctx, disk.PageID(p), buf); err != nil {
			t.Fatalf("read %d: %v", p, err)
		}
	}
	qc.Finish(qt, "ok", nil)

	total := qt.Total()
	if total.Hedges == 0 {
		t.Fatal("no read hedged — the stall mix is degenerate")
	}
	if total.Reads != pages {
		t.Errorf("span reads %d, want %d", total.Reads, pages)
	}
	// A hedge is one extra send for the same logical read.
	if total.NetSends != pages+total.Hedges {
		t.Errorf("span sends %d != %d reads + %d hedges", total.NetSends, pages, total.Hedges)
	}

	// The losing leg of each hedge still gets its response; wait for the
	// stragglers so sends == recvs settles, then compare all three legs.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if c := qt.Total(); c.NetRecvs == c.NetSends || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	total = qt.Total()
	if total.NetRecvs != total.NetSends {
		t.Errorf("stragglers never answered: %d sends, %d recvs", total.NetSends, total.NetRecvs)
	}
	delta := reg.Snapshot().Delta(before)
	if got := delta.Value("asm_net_hedges_total", "dev", "net0"); got != total.Hedges {
		t.Errorf("span hedges %d != registry hedges %d", total.Hedges, got)
	}
	if got := delta.Value("asm_net_sends_total", "dev", "net0"); got != total.NetSends {
		t.Errorf("span sends %d != registry sends %d", total.NetSends, got)
	}
	pq := trace.ReplayEvents(trace.FilterQuery(col.Events(), qt.QID))
	if pq.Hedges != total.Hedges || pq.NetSends != total.NetSends || pq.NetRecvs != total.NetRecvs {
		t.Errorf("replay net (%d sends, %d recvs, %d hedges) != span (%d, %d, %d)",
			pq.NetSends, pq.NetRecvs, pq.Hedges, total.NetSends, total.NetRecvs, total.Hedges)
	}
	if pq.Reads != total.Reads {
		t.Errorf("replay reads %d != span reads %d", pq.Reads, total.Reads)
	}
}
