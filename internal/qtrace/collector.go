package qtrace

import (
	"sync"
	"sync/atomic"
	"time"

	"revelation/internal/trace"
)

// Collector owns query IDs and retains recent traces: a bounded ring
// of completed traces for /tracez, a bounded slow-query log, and a
// latency histogram feeding the p50/p90/p99 line. One collector
// serves one process; the pagesvc server keeps a second collector for
// remote (wire-propagated) traces.
type Collector struct {
	nextQID uint64 // atomic

	mu     sync.Mutex
	ring   []*Trace // completed traces, oldest first once full
	pos    int
	full   bool
	active map[uint64]*Trace
	order  []uint64 // active insertion order, for remote-trace eviction
	slow   []*Trace // completed traces over the threshold, oldest first
	lat    trace.Hist

	slowThreshold time.Duration
	slowLogf      func(format string, args ...any)
}

// Ring and slow-log bounds.
const (
	defaultRing = 64
	slowLogCap  = 32
	// remoteActiveCap bounds the server-side active map: the server
	// never learns a remote query finished, so past the cap the oldest
	// remote trace is retired into the completed ring.
	remoteActiveCap = 256
)

// NewCollector builds a collector retaining up to ringCap completed
// traces (<=0 means the default of 64).
func NewCollector(ringCap int) *Collector {
	if ringCap <= 0 {
		ringCap = defaultRing
	}
	return &Collector{
		ring:   make([]*Trace, ringCap),
		active: map[uint64]*Trace{},
	}
}

// SetSlowThreshold makes completed traces at or above d land in the
// slow-query log and, when logf is non-nil, emit one log line each.
// Zero disables the log.
func (c *Collector) SetSlowThreshold(d time.Duration, logf func(format string, args ...any)) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.slowThreshold = d
	c.slowLogf = logf
	c.mu.Unlock()
}

// Begin assigns the next query ID, opens a trace rooted at name, and
// registers it active. The caller installs the returned root span in
// its context with With and must call Finish when the query ends. A
// nil collector returns (nil, nil).
func (c *Collector) Begin(name string) (*Trace, *Span) {
	if c == nil {
		return nil, nil
	}
	qid := atomic.AddUint64(&c.nextQID, 1)
	t := newTrace(qid, name, false)
	c.mu.Lock()
	c.active[qid] = t
	c.order = append(c.order, qid)
	c.mu.Unlock()
	return t, t.Root()
}

// Finish closes t with the given status ("ok", "error", "timeout",
// "canceled", "shed"), moves it from the active set into the completed
// ring, records its latency, and appends it to the slow-query log when
// it crossed the threshold. Nil collector or trace is a no-op.
func (c *Collector) Finish(t *Trace, status string, err error) {
	if c == nil || t == nil {
		return
	}
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	t.finish(status, msg)
	d := t.Duration()
	c.mu.Lock()
	delete(c.active, t.QID)
	for i, q := range c.order {
		if q == t.QID {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.retireLocked(t)
	c.lat.Add(int64(d))
	slow := c.slowThreshold > 0 && d >= c.slowThreshold
	logf := c.slowLogf
	c.mu.Unlock()
	if slow && logf != nil {
		logf("slow query qid=%d %s status=%s dur=%s critical-path=%s",
			t.QID, t.Name, status, d, Dominant(t))
	}
}

// retireLocked appends t to the completed ring (and slow log) under mu.
func (c *Collector) retireLocked(t *Trace) {
	c.ring[c.pos] = t
	c.pos++
	if c.pos == len(c.ring) {
		c.pos = 0
		c.full = true
	}
	if c.slowThreshold > 0 && t.Duration() >= c.slowThreshold {
		c.slow = append(c.slow, t)
		if len(c.slow) > slowLogCap {
			c.slow = c.slow[len(c.slow)-slowLogCap:]
		}
	}
}

// Remote returns the active trace for a wire-propagated query ID,
// creating it (with its root span) on first sight. The server charges
// per-request spans under the returned trace's root so client- and
// server-side work share one QID. Past remoteActiveCap the oldest
// remote trace retires into the completed ring.
func (c *Collector) Remote(qid uint64, name string) *Trace {
	if c == nil || qid == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if t := c.active[qid]; t != nil {
		return t
	}
	t := newTrace(qid, name, true)
	c.active[qid] = t
	c.order = append(c.order, qid)
	if len(c.order) > remoteActiveCap {
		oldest := c.order[0]
		c.order = c.order[1:]
		if old := c.active[oldest]; old != nil {
			delete(c.active, oldest)
			old.finish("retired", "")
			c.retireLocked(old)
		}
	}
	return t
}

// Completed returns the completed ring, oldest first.
func (c *Collector) Completed() []*Trace {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*Trace
	if c.full {
		out = append(out, c.ring[c.pos:]...)
	}
	out = append(out, c.ring[:c.pos]...)
	return out
}

// Active returns the in-flight traces in start order.
func (c *Collector) Active() []*Trace {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Trace, 0, len(c.order))
	for _, qid := range c.order {
		if t := c.active[qid]; t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Slow returns the slow-query log, oldest first.
func (c *Collector) Slow() []*Trace {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Trace, len(c.slow))
	copy(out, c.slow)
	return out
}

// Latency snapshots the completed-query latency histogram
// (nanosecond samples).
func (c *Collector) Latency() trace.Hist {
	if c == nil {
		return trace.Hist{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lat
}

// TotalAll sums per-span counters across every trace the collector
// has seen (active + completed + slow-evicted are disjoint: slow log
// entries are also in the ring, so the ring and active set cover all).
// This is the per-query side of the extended three-way check; callers
// must size the ring to hold the whole workload when exactness
// matters.
func (c *Collector) TotalAll() Counters {
	var sum Counters
	for _, t := range c.Completed() {
		sum.Add(t.Total())
	}
	for _, t := range c.Active() {
		sum.Add(t.Total())
	}
	return sum
}
