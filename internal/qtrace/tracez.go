package qtrace

import (
	"fmt"
	"net/http"
	"strings"
	"time"
)

// Handler serves the /tracez page: a plain-text dump of the
// collector's recent completed traces (newest first) with per-span
// timelines, per-span counters, the slow-query log, and completed-
// query latency quantiles from the power-of-two histogram.
func Handler(c *Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if c == nil {
			fmt.Fprintln(w, "qtrace: disabled")
			return
		}
		completed := c.Completed()
		active := c.Active()
		slow := c.Slow()
		lat := c.Latency()

		fmt.Fprintf(w, "qtrace: %d completed, %d active, %d slow\n",
			len(completed), len(active), len(slow))
		if lat.Count > 0 {
			fmt.Fprintf(w, "latency: n=%d p50<=%s p90<=%s p99<=%s max=%s\n",
				lat.Count,
				time.Duration(lat.Quantile(0.50)),
				time.Duration(lat.Quantile(0.90)),
				time.Duration(lat.Quantile(0.99)),
				time.Duration(lat.Max))
		}

		if len(slow) > 0 {
			fmt.Fprintf(w, "\nslow queries (oldest first):\n")
			for _, t := range slow {
				status, _ := t.Status()
				fmt.Fprintf(w, "  qid=%-6d %-24s %-8s %10s  critical-path=%s\n",
					t.QID, t.Name, status, t.Duration().Round(time.Microsecond), Dominant(t))
			}
		}

		if len(active) > 0 {
			fmt.Fprintf(w, "\nactive queries:\n")
			for _, t := range active {
				kind := ""
				if t.Remote {
					kind = " (remote)"
				}
				fmt.Fprintf(w, "  qid=%-6d %-24s running %10s%s\n",
					t.QID, t.Name, t.Duration().Round(time.Microsecond), kind)
			}
		}

		fmt.Fprintf(w, "\nrecent traces (newest first):\n")
		for i := len(completed) - 1; i >= 0; i-- {
			writeTrace(w, completed[i])
		}
	})
}

// writeTrace renders one trace block: header, critical path, total
// counters, and the indented span timeline.
func writeTrace(w http.ResponseWriter, t *Trace) {
	status, errMsg := t.Status()
	kind := ""
	if t.Remote {
		kind = " remote"
	}
	spans := t.Spans()
	fmt.Fprintf(w, "\nqid=%d %q%s status=%s dur=%s spans=%d",
		t.QID, t.Name, kind, status, t.Duration().Round(time.Microsecond), len(spans))
	if n := t.Truncated(); n > 0 {
		fmt.Fprintf(w, " truncated=%d", n)
	}
	fmt.Fprintln(w)
	if errMsg != "" {
		fmt.Fprintf(w, "  error: %s\n", errMsg)
	}
	if cp := CriticalPath(t); len(cp) > 0 {
		parts := make([]string, 0, len(cp))
		for _, lt := range cp {
			parts = append(parts, fmt.Sprintf("%s %.0f%%", lt.Layer, 100*lt.Frac))
		}
		fmt.Fprintf(w, "  critical-path: %s\n", strings.Join(parts, " > "))
	}
	fmt.Fprintf(w, "  totals: %s\n", FormatCounters(t.Total()))

	depth := map[int32]int{}
	dur := int64(t.Duration())
	for _, s := range spans {
		d := 0
		if s.parentID != 0 {
			d = depth[s.parentID] + 1
		}
		depth[s.id] = d
		end := s.endNS
		if end == 0 {
			end = dur
		}
		label := fmt.Sprintf("%s%s/%s", strings.Repeat("  ", d), s.layer, s.name)
		fmt.Fprintf(w, "  %-28s %s %10s  %s\n",
			label, timeline(s.startNS, end, dur, 32),
			time.Duration(end-s.startNS).Round(time.Microsecond),
			FormatCounters(s.Counters()))
	}
}

// timeline renders one span as a fixed-width bar positioned within the
// trace duration.
func timeline(start, end, total int64, width int) string {
	if total <= 0 {
		total = 1
	}
	lo := int(start * int64(width) / total)
	hi := int(end * int64(width) / total)
	if lo >= width {
		lo = width - 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	if hi > width {
		hi = width
	}
	return "|" + strings.Repeat(" ", lo) + strings.Repeat("#", hi-lo) +
		strings.Repeat(" ", width-hi) + "|"
}

// FormatCounters renders the non-zero fields of c compactly.
func FormatCounters(c Counters) string {
	var b strings.Builder
	add := func(name string, v int64) {
		if v == 0 {
			return
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", name, v)
	}
	add("reads", c.Reads)
	add("seek", c.SeekPages)
	add("faults", c.Faults)
	add("hits", c.Hits)
	add("misses", c.Misses)
	add("ioretries", c.IORetries)
	add("fetches", c.Fetches)
	add("links", c.Links)
	add("refretries", c.RefRetries)
	add("stalls", c.Stalls)
	add("sends", c.NetSends)
	add("recvs", c.NetRecvs)
	add("timeouts", c.NetTimeouts)
	add("hedges", c.Hedges)
	if b.Len() == 0 {
		return "-"
	}
	return b.String()
}
