package qtrace

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestNilSpanIsSafe(t *testing.T) {
	var sp *Span
	sp.OnRead(7)
	sp.OnFault()
	sp.OnHit()
	sp.OnMiss()
	sp.OnIORetries(3)
	sp.OnFetch()
	sp.OnLink()
	sp.OnRefRetry()
	sp.OnStall()
	sp.OnNetSend()
	sp.OnNetRecv()
	sp.OnNetTimeout()
	sp.OnHedge()
	sp.End()
	if sp.ID() != 0 || sp.QID() != 0 || sp.Trace() != nil {
		t.Error("nil span leaked identity")
	}
	if c := sp.Counters(); c != (Counters{}) {
		t.Errorf("nil span counters = %+v, want zero", c)
	}
	if child := sp.StartChild(LayerDisk, "x"); child != nil {
		t.Error("nil span produced a child")
	}
}

func TestContextPlumbing(t *testing.T) {
	if From(nil) != nil {
		t.Error("From(nil ctx) != nil")
	}
	ctx := context.Background()
	if From(ctx) != nil {
		t.Error("From(plain ctx) != nil")
	}
	if With(ctx, nil) != ctx {
		t.Error("With(ctx, nil) must return ctx unchanged")
	}
	sp, ctx2 := Start(ctx, LayerDisk, "x")
	if sp != nil || ctx2 != ctx {
		t.Error("Start with no active span must be a no-op")
	}

	c := NewCollector(4)
	tr, root := c.Begin("q")
	if tr == nil || root == nil {
		t.Fatal("Begin returned nil")
	}
	ctx = With(ctx, root)
	if From(ctx) != root {
		t.Error("From did not return the installed span")
	}
	child, cctx := Start(ctx, LayerBuffer, "fix")
	if child == nil || child == root {
		t.Fatal("Start did not open a child span")
	}
	if From(cctx) != child {
		t.Error("Start's context does not carry the child")
	}
	if child.QID() != tr.QID || root.QID() != tr.QID {
		t.Error("span QIDs disagree with the trace")
	}
}

func TestSpanTreeAndTotals(t *testing.T) {
	c := NewCollector(4)
	tr, root := c.Begin("q")
	a := root.StartChild(LayerAssembly, "assemble")
	d := a.StartChild(LayerDisk, "read")
	a.OnFetch()
	a.OnLink()
	d.OnRead(10)
	d.OnRead(0) // zero-distance read still counts a read
	root.OnHit()
	d.End()
	a.End()
	c.Finish(tr, "ok", nil)

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].ID() != 1 || spans[1].parentID != 1 || spans[2].parentID != spans[1].id {
		t.Error("span tree parentage wrong")
	}
	got := tr.Total()
	want := Counters{Reads: 2, SeekPages: 10, Hits: 1, Fetches: 1, Links: 1}
	if got != want {
		t.Errorf("Total = %+v, want %+v", got, want)
	}
	if !tr.Done() {
		t.Error("trace not done after Finish")
	}
	if st, _ := tr.Status(); st != "ok" {
		t.Errorf("status = %q, want ok", st)
	}
}

func TestSpanBudgetTruncationKeepsSumsExact(t *testing.T) {
	c := NewCollector(4)
	tr, root := c.Begin("q")
	// Blow through the budget; every post-budget child aliases to its
	// parent, so counters still land inside the tree.
	sp := root
	for i := 0; i < maxSpans+100; i++ {
		sp = sp.StartChild(LayerDisk, "s")
		sp.OnRead(1)
	}
	if got := len(tr.Spans()); got != maxSpans {
		t.Errorf("trace holds %d spans, want cap %d", got, maxSpans)
	}
	if tr.Truncated() != 101 {
		// maxSpans-1 children fit under the root; the remaining 101
		// StartChild calls alias.
		t.Errorf("truncated = %d, want 101", tr.Truncated())
	}
	total := tr.Total()
	if total.Reads != maxSpans+100 {
		t.Errorf("reads across tree = %d, want %d (exact despite truncation)", total.Reads, maxSpans+100)
	}
}

func TestEndIsIdempotent(t *testing.T) {
	c := NewCollector(4)
	tr, root := c.Begin("q")
	sp := root.StartChild(LayerDisk, "x")
	sp.End()
	end1 := sp.endNS
	time.Sleep(time.Millisecond)
	sp.End()
	if sp.endNS != end1 {
		t.Error("second End moved the end timestamp")
	}
	c.Finish(tr, "ok", nil)
	c.Finish(tr, "error", errors.New("again")) // second finish is a no-op
	if st, _ := tr.Status(); st != "ok" {
		t.Errorf("status after double finish = %q, want ok", st)
	}
}

func TestCollectorRingAndActive(t *testing.T) {
	c := NewCollector(2)
	t1, _ := c.Begin("a")
	t2, _ := c.Begin("b")
	if t2.QID != t1.QID+1 {
		t.Errorf("qids not sequential: %d then %d", t1.QID, t2.QID)
	}
	if got := len(c.Active()); got != 2 {
		t.Fatalf("active = %d, want 2", got)
	}
	c.Finish(t1, "ok", nil)
	c.Finish(t2, "ok", nil)
	t3, _ := c.Begin("c")
	c.Finish(t3, "ok", nil)
	comp := c.Completed()
	if len(comp) != 2 {
		t.Fatalf("ring holds %d, want 2", len(comp))
	}
	// Oldest-first, and t1 has been evicted by t3.
	if comp[0] != t2 || comp[1] != t3 {
		t.Error("ring order wrong after wrap")
	}
	if got := len(c.Active()); got != 0 {
		t.Errorf("active after finishes = %d, want 0", got)
	}
	if lat := c.Latency(); lat.Count != 3 {
		t.Errorf("latency count = %d, want 3", lat.Count)
	}
}

func TestCollectorSlowLog(t *testing.T) {
	c := NewCollector(8)
	var logged []string
	c.SetSlowThreshold(time.Nanosecond, func(format string, args ...any) {
		logged = append(logged, format)
	})
	tr, root := c.Begin("slow")
	root.StartChild(LayerDisk, "read").OnRead(5)
	time.Sleep(100 * time.Microsecond)
	c.Finish(tr, "ok", nil)
	if len(c.Slow()) != 1 {
		t.Fatalf("slow log holds %d, want 1", len(c.Slow()))
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "slow query") {
		t.Errorf("slow logf not invoked: %q", logged)
	}

	fast := NewCollector(8)
	tf, _ := fast.Begin("fast") // threshold zero: nothing is slow
	fast.Finish(tf, "ok", nil)
	if len(fast.Slow()) != 0 {
		t.Error("slow log populated without a threshold")
	}
}

func TestCollectorRemote(t *testing.T) {
	c := NewCollector(4)
	if c.Remote(0, "x") != nil {
		t.Error("qid 0 must not create a remote trace")
	}
	t1 := c.Remote(42, "remote")
	if t1 == nil || !t1.Remote || t1.QID != 42 {
		t.Fatalf("remote trace wrong: %+v", t1)
	}
	if c.Remote(42, "remote") != t1 {
		t.Error("second sight of qid 42 did not reuse the trace")
	}
	// Eviction past the cap retires the oldest into the ring.
	for q := uint64(100); q < 100+remoteActiveCap; q++ {
		c.Remote(q, "remote")
	}
	if got := len(c.Active()); got != remoteActiveCap {
		t.Errorf("active = %d, want cap %d", got, remoteActiveCap)
	}
	if !t1.Done() {
		t.Error("evicted remote trace not finished")
	}
	if st, _ := t1.Status(); st != "retired" {
		t.Errorf("evicted status = %q, want retired", st)
	}
}

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	tr, sp := c.Begin("x")
	if tr != nil || sp != nil {
		t.Error("nil collector Begin returned non-nil")
	}
	c.Finish(nil, "ok", nil)
	c.SetSlowThreshold(time.Second, nil)
	if c.Remote(1, "x") != nil || c.Completed() != nil || c.Active() != nil || c.Slow() != nil {
		t.Error("nil collector leaked state")
	}
	if lat := c.Latency(); lat.Count != 0 {
		t.Error("nil collector latency non-zero")
	}
}

func TestCriticalPath(t *testing.T) {
	c := NewCollector(4)
	tr, root := c.Begin("q")
	// Hand-build deterministic timings: root [0,100], assembly child
	// [10,90], disk grandchild [20,70]. Self times: serve 20, assembly
	// 30, disk 50 — disk dominates.
	a := root.StartChild(LayerAssembly, "assemble")
	d := a.StartChild(LayerDisk, "read")
	root.startNS, root.endNS = 0, 100
	a.startNS, a.endNS = 10, 90
	d.startNS, d.endNS = 20, 70
	tr.mu.Lock()
	tr.endNS = 100
	tr.status = "ok"
	tr.mu.Unlock()

	lt := CriticalPath(tr)
	if len(lt) != 3 {
		t.Fatalf("got %d layers, want 3", len(lt))
	}
	if lt[0].Layer != LayerDisk || lt[0].SelfNS != 50 {
		t.Errorf("dominant = %s/%d, want disk/50", lt[0].Layer, lt[0].SelfNS)
	}
	if lt[1].Layer != LayerAssembly || lt[1].SelfNS != 30 {
		t.Errorf("second = %s/%d, want assembly/30", lt[1].Layer, lt[1].SelfNS)
	}
	if Dominant(tr) != LayerDisk {
		t.Errorf("Dominant = %q, want disk", Dominant(tr))
	}
	var sum int64
	for _, l := range lt {
		sum += l.SelfNS
	}
	if sum != 100 {
		t.Errorf("self times sum to %d, want the root duration 100", sum)
	}
}

func TestCriticalPathClampsRunawayChildren(t *testing.T) {
	c := NewCollector(4)
	tr, root := c.Begin("q")
	a := root.StartChild(LayerAssembly, "assemble")
	// Child outlives the parent (e.g. a hedge goroutine ending after the
	// request): parent self time clamps to zero instead of going
	// negative.
	root.startNS, root.endNS = 0, 50
	a.startNS, a.endNS = 10, 200
	tr.mu.Lock()
	tr.endNS = 50
	tr.mu.Unlock()
	for _, l := range CriticalPath(tr) {
		if l.SelfNS < 0 {
			t.Errorf("layer %s has negative self time %d", l.Layer, l.SelfNS)
		}
	}
}

func TestFormatCounters(t *testing.T) {
	if got := FormatCounters(Counters{}); got != "-" {
		t.Errorf("zero counters = %q, want -", got)
	}
	got := FormatCounters(Counters{Reads: 3, SeekPages: 12, Hits: 5, NetSends: 2})
	for _, want := range []string{"reads=3", "seek=12", "hits=5", "sends=2"} {
		if !strings.Contains(got, want) {
			t.Errorf("%q missing %q", got, want)
		}
	}
	if strings.Contains(got, "fault") || strings.Contains(got, "hedge") {
		t.Errorf("%q shows zero-valued fields", got)
	}
}

// TestDisabledPathAllocs is the contract the hot path relies on: with
// no span in the context, the full instrumentation surface — lookup,
// child start, every counter hook — allocates nothing.
func TestDisabledPathAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := From(ctx)
		sp.OnRead(5)
		sp.OnHit()
		sp.OnMiss()
		sp.OnNetSend()
		sp.QID()
		child, cctx := Start(ctx, LayerDisk, "read")
		child.End()
		_ = cctx
		_ = With(ctx, nil)
	})
	if allocs != 0 {
		t.Errorf("disabled tracing path allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkDisabledSpan measures the disabled-path overhead every
// Fix/ReadPage pays when tracing is off (see EXPERIMENTS.md §overhead).
func BenchmarkDisabledSpan(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := From(ctx)
		sp.OnRead(1)
		sp.OnMiss()
	}
}

// BenchmarkEnabledSpan is the traced counterpart: one context lookup
// plus two atomic adds.
func BenchmarkEnabledSpan(b *testing.B) {
	c := NewCollector(4)
	tr, root := c.Begin("bench")
	defer c.Finish(tr, "ok", nil)
	ctx := With(context.Background(), root)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := From(ctx)
		sp.OnRead(1)
		sp.OnMiss()
	}
}
