package qtrace

import "sort"

// LayerTime is one layer's share of a trace's wall time, computed from
// span self-times: a span's self time is its duration minus the summed
// durations of its direct children (clamped at zero — children may
// overlap their parent's tail when a query is abandoned mid-flight).
// Aggregating self time by layer tells which layer *dominated* a slow
// query: a query stuck on seeks shows disk on top, one stuck behind
// admission shows serve or assembly.
type LayerTime struct {
	Layer  string
	SelfNS int64
	Frac   float64 // share of the trace duration, 0..1
}

// CriticalPath aggregates per-layer self time for t, sorted by
// descending share. Open spans are measured to the trace's current
// duration.
func CriticalPath(t *Trace) []LayerTime {
	if t == nil {
		return nil
	}
	spans := t.Spans()
	end := int64(t.Duration())
	dur := make([]int64, len(spans)+2)   // by span id
	child := make([]int64, len(spans)+2) // summed child durations by parent id
	for _, s := range spans {
		e := s.endNS
		if e == 0 {
			e = end
		}
		d := e - s.startNS
		if d < 0 {
			d = 0
		}
		dur[s.id] = d
		if s.parentID != 0 {
			child[s.parentID] += d
		}
	}
	self := map[string]int64{}
	for _, s := range spans {
		d := dur[s.id] - child[s.id]
		if d < 0 {
			d = 0
		}
		self[s.layer] += d
	}
	out := make([]LayerTime, 0, len(self))
	total := int64(0)
	for _, d := range self {
		total += d
	}
	for layer, d := range self {
		lt := LayerTime{Layer: layer, SelfNS: d}
		if total > 0 {
			lt.Frac = float64(d) / float64(total)
		}
		out = append(out, lt)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SelfNS != out[j].SelfNS {
			return out[i].SelfNS > out[j].SelfNS
		}
		return out[i].Layer < out[j].Layer
	})
	return out
}

// Dominant names the layer with the largest self time, "" for an
// empty trace.
func Dominant(t *Trace) string {
	cp := CriticalPath(t)
	if len(cp) == 0 {
		return ""
	}
	return cp[0].Layer
}
