// Package qtrace is the per-query attribution layer: request-scoped
// span trees threaded through the stack via context.Context so every
// seek, read, fault, retry, and network hop can be charged to the
// query that caused it.
//
// The global trace layer (internal/trace) answers "what did this run
// cost"; qtrace answers "which query paid". The two are reconciled by
// an extended three-way agreement check: the sum of per-span counters
// across all query traces must equal both the global trace replay and
// the metrics registry delta (see internal/bench).
//
// Design rules, mirroring internal/trace:
//
//   - qtrace imports only the standard library and internal/trace (for
//     Hist), so disk, buffer, and pagesvc can depend on it without
//     cycles.
//   - A nil *Span is a valid no-op span: every method is nil-safe. The
//     disabled path — no span installed in the context — costs one
//     context.Value lookup plus one nil check and allocates nothing
//     (gated by BenchmarkDisabledSpan and a testing.AllocsPerRun test).
//   - Counters are plain atomics so instrumentation points never take
//     a lock; the span tree itself is only mutated under the owning
//     Trace's mutex when spans start.
//   - Wall-clock timestamps live only in spans (for /tracez timelines);
//     they never enter the deterministic JSONL event stream. Events
//     carry only the query ID (trace.Event.QID), which is itself
//     deterministic for seeded sequential workloads.
package qtrace

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Layer names used for spans. Spans reuse the trace layer constants
// where one exists; serve-level spans use LayerServe.
const (
	LayerServe    = "serve"
	LayerPlan     = "plan"
	LayerAssembly = "assembly"
	LayerBuffer   = "buffer"
	LayerDisk     = "disk"
	LayerNet      = "net"
)

// Counters is the per-span counter block. Every field is updated with
// atomic adds and read with atomic loads; Add/Load snapshot helpers
// keep the three-way test honest. The fields attribute exactly the
// quantities the global registry and trace replay already count — that
// is what makes the per-query sum comparable to the global delta.
type Counters struct {
	// Disk-layer attribution (charged by the device that performed the
	// physical access, inside its own mutex, so seek distances are
	// exact even under concurrent queries).
	Reads     int64 // physical page reads
	SeekPages int64 // head movement those reads cost, in pages
	Faults    int64 // injected I/O faults observed (transient + permanent)

	// Buffer-layer attribution.
	Hits      int64 // pool requests satisfied from a resident frame
	Misses    int64 // pool requests that required a device read
	IORetries int64 // transient read errors absorbed by the pool's retry policy

	// Assembly-layer attribution.
	Fetches    int64 // components materialized from storage
	Links      int64 // references satisfied without a fetch
	RefRetries int64 // references re-queued after a transient fault
	Stalls     int64 // admissions paused by buffer exhaustion

	// Net-layer attribution (pagesvc client).
	NetSends    int64 // request frames sent
	NetRecvs    int64 // response frames received
	NetTimeouts int64 // requests that timed out in flight
	Hedges      int64 // straggler reads hedged to a replica

	// Shard-layer attribution (shard router).
	DegradedReads int64 // reads served by a replica or refused with the breaker open
}

// Add accumulates o into c (non-atomic; for aggregation of snapshots).
func (c *Counters) Add(o Counters) {
	c.Reads += o.Reads
	c.SeekPages += o.SeekPages
	c.Faults += o.Faults
	c.Hits += o.Hits
	c.Misses += o.Misses
	c.IORetries += o.IORetries
	c.Fetches += o.Fetches
	c.Links += o.Links
	c.RefRetries += o.RefRetries
	c.Stalls += o.Stalls
	c.NetSends += o.NetSends
	c.NetRecvs += o.NetRecvs
	c.NetTimeouts += o.NetTimeouts
	c.Hedges += o.Hedges
	c.DegradedReads += o.DegradedReads
}

// load atomically snapshots c.
func (c *Counters) load() Counters {
	return Counters{
		Reads:         atomic.LoadInt64(&c.Reads),
		SeekPages:     atomic.LoadInt64(&c.SeekPages),
		Faults:        atomic.LoadInt64(&c.Faults),
		Hits:          atomic.LoadInt64(&c.Hits),
		Misses:        atomic.LoadInt64(&c.Misses),
		IORetries:     atomic.LoadInt64(&c.IORetries),
		Fetches:       atomic.LoadInt64(&c.Fetches),
		Links:         atomic.LoadInt64(&c.Links),
		RefRetries:    atomic.LoadInt64(&c.RefRetries),
		Stalls:        atomic.LoadInt64(&c.Stalls),
		NetSends:      atomic.LoadInt64(&c.NetSends),
		NetRecvs:      atomic.LoadInt64(&c.NetRecvs),
		NetTimeouts:   atomic.LoadInt64(&c.NetTimeouts),
		Hedges:        atomic.LoadInt64(&c.Hedges),
		DegradedReads: atomic.LoadInt64(&c.DegradedReads),
	}
}

// Span is one node of a query's span tree. The zero pointer (nil) is a
// valid no-op span; all methods are nil-safe so instrumentation points
// need no guard beyond the method call itself.
type Span struct {
	tr       *Trace
	id       int32
	parentID int32
	layer    string
	name     string
	startNS  int64 // offset from trace start, monotonic
	endNS    int64 // 0 while open; set once by End
	c        Counters
}

// ID returns the span's 1-based index within its trace (0 for nil).
func (s *Span) ID() int32 {
	if s == nil {
		return 0
	}
	return s.id
}

// QID returns the owning query's ID, or 0 for the nil span. This is
// the value that rides trace events and pagesvc request frames.
func (s *Span) QID() uint64 {
	if s == nil {
		return 0
	}
	return s.tr.QID
}

// Trace returns the owning trace (nil for the nil span).
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.tr
}

// Counters atomically snapshots the span's counter block.
func (s *Span) Counters() Counters {
	if s == nil {
		return Counters{}
	}
	return s.c.load()
}

// Layer returns the span's layer tag ("" for nil).
func (s *Span) Layer() string {
	if s == nil {
		return ""
	}
	return s.layer
}

// Name returns the span's label ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// StartChild opens a child span under s. When the trace's span budget
// is exhausted, the parent itself is returned so counters keep
// accumulating somewhere inside the tree and per-query sums stay
// exact; the trace records the truncation.
func (s *Span) StartChild(layer, name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(s, layer, name)
}

// End closes the span. Ending a span twice, ending the nil span, and
// ending a truncation-aliased parent early are all harmless.
func (s *Span) End() {
	if s == nil {
		return
	}
	atomic.CompareAndSwapInt64(&s.endNS, 0, s.tr.sinceNS())
}

// Attribution points. Each charges one already-globally-counted event
// to this span.

// OnRead charges one physical page read costing dist pages of head
// movement.
func (s *Span) OnRead(dist int64) {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.c.Reads, 1)
	if dist > 0 {
		atomic.AddInt64(&s.c.SeekPages, dist)
	}
}

// OnFault charges one injected I/O fault.
func (s *Span) OnFault() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.c.Faults, 1)
}

// OnHit charges one buffer-pool hit.
func (s *Span) OnHit() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.c.Hits, 1)
}

// OnMiss charges one buffer-pool miss.
func (s *Span) OnMiss() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.c.Misses, 1)
}

// OnIORetries charges n transient read errors absorbed by the pool.
func (s *Span) OnIORetries(n int64) {
	if s == nil || n == 0 {
		return
	}
	atomic.AddInt64(&s.c.IORetries, n)
}

// OnFetch charges one component fetch.
func (s *Span) OnFetch() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.c.Fetches, 1)
}

// OnLink charges one fetch-free reference link.
func (s *Span) OnLink() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.c.Links, 1)
}

// OnRefRetry charges one reference re-queued after a transient fault.
func (s *Span) OnRefRetry() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.c.RefRetries, 1)
}

// OnStall charges one admission stall.
func (s *Span) OnStall() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.c.Stalls, 1)
}

// OnNetSend charges one request frame.
func (s *Span) OnNetSend() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.c.NetSends, 1)
}

// OnNetRecv charges one response frame.
func (s *Span) OnNetRecv() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.c.NetRecvs, 1)
}

// OnNetTimeout charges one in-flight request timeout.
func (s *Span) OnNetTimeout() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.c.NetTimeouts, 1)
}

// OnHedge charges one hedged read.
func (s *Span) OnHedge() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.c.Hedges, 1)
}

// OnDegraded counts a read served by a shard's replica (or refused
// outright) because the shard's circuit breaker kept the primary out
// of the read path.
func (s *Span) OnDegraded() {
	if s == nil {
		return
	}
	atomic.AddInt64(&s.c.DegradedReads, 1)
}

// maxSpans bounds one trace's span tree. Past the cap StartChild
// aliases to the parent (see Span.StartChild), so a pathological query
// cannot grow memory without bound while counter sums stay exact.
const maxSpans = 512

// Trace is one query's span tree plus identity and outcome. Spans are
// appended under mu; counters inside spans are atomics.
type Trace struct {
	// QID is the collector-assigned query ID; it is carried on trace
	// events and pagesvc request frames.
	QID uint64
	// Name describes the request ("GET /query", figure name, ...).
	Name string
	// Remote marks traces reconstructed on the server side of the
	// pagesvc wire from propagated QIDs.
	Remote bool
	// Start is the wall-clock start (display only).
	Start time.Time

	mu        sync.Mutex
	spans     []*Span
	truncated int
	status    string
	errMsg    string
	endNS     int64
}

// newTrace builds a trace with its root span.
func newTrace(qid uint64, name string, remote bool) *Trace {
	t := &Trace{QID: qid, Name: name, Remote: remote, Start: time.Now()}
	root := &Span{tr: t, id: 1, layer: LayerServe, name: name}
	t.spans = append(t.spans, root)
	return t
}

// sinceNS is the monotonic offset from trace start.
func (t *Trace) sinceNS() int64 { return int64(time.Since(t.Start)) }

// Root returns the root span.
func (t *Trace) Root() *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans[0]
}

func (t *Trace) newSpan(parent *Span, layer, name string) *Span {
	now := t.sinceNS()
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxSpans {
		t.truncated++
		return parent
	}
	s := &Span{
		tr:       t,
		id:       int32(len(t.spans) + 1),
		parentID: parent.id,
		layer:    layer,
		name:     name,
		startNS:  now,
	}
	t.spans = append(t.spans, s)
	return s
}

// finish stamps the outcome; idempotent.
func (t *Trace) finish(status, errMsg string) {
	end := t.sinceNS()
	t.mu.Lock()
	if t.endNS == 0 {
		t.endNS = end
		t.status = status
		t.errMsg = errMsg
	}
	t.mu.Unlock()
	t.spans[0].End()
}

// Duration is the trace's wall time: end-to-end once finished, the
// running time so far otherwise.
func (t *Trace) Duration() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.endNS != 0 {
		return time.Duration(t.endNS)
	}
	return time.Duration(t.sinceNS())
}

// Done reports whether the trace has finished.
func (t *Trace) Done() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.endNS != 0
}

// Status returns the recorded outcome ("ok", "error", "timeout",
// "canceled", "shed"; "" while active) and error message.
func (t *Trace) Status() (status, errMsg string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status, t.errMsg
}

// Truncated returns how many spans were folded into their parent by
// the span budget.
func (t *Trace) Truncated() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.truncated
}

// Spans snapshots the span list in creation order (root first). The
// *Span values are shared — counters read through them are live — but
// the slice is a copy.
func (t *Trace) Spans() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Total sums the counters of every span in the trace.
func (t *Trace) Total() Counters {
	var sum Counters
	for _, s := range t.Spans() {
		sum.Add(s.Counters())
	}
	return sum
}

// Context plumbing. The active span travels in the context; From is
// the single lookup every instrumentation point performs.

type ctxKey struct{}

// With returns a context carrying sp as the active span. With(ctx,
// nil) returns ctx unchanged so disabled paths never allocate.
func With(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// From extracts the active span, nil-safely: a nil context, a context
// without a span, and a plain context.Background() all yield nil (the
// no-op span). From performs no allocation.
func From(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// Start opens a child span of the context's active span and returns it
// along with a context carrying it. With no active span this is a
// no-op: it returns (nil, ctx) without allocating.
func Start(ctx context.Context, layer, name string) (*Span, context.Context) {
	parent := From(ctx)
	if parent == nil {
		return nil, ctx
	}
	sp := parent.StartChild(layer, name)
	if sp == parent {
		return sp, ctx // span budget exhausted: stay on the parent
	}
	return sp, With(ctx, sp)
}
