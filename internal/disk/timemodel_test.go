package disk

import (
	"testing"
	"time"
)

func TestSeekTimeMonotoneAndBounded(t *testing.T) {
	m := DefaultTimeModel
	if m.SeekTime(0) != 0 {
		t.Errorf("zero-distance seek costs %v", m.SeekTime(0))
	}
	prev := time.Duration(0)
	for _, d := range []int64{1, 10, 100, 1000, 10000, 50000, 500000} {
		cur := m.SeekTime(d)
		if cur < prev {
			t.Errorf("SeekTime(%d) = %v < previous %v", d, cur, prev)
		}
		prev = cur
	}
	if m.SeekTime(1) < m.SeekStartup {
		t.Errorf("short seek below startup cost: %v", m.SeekTime(1))
	}
	// Beyond full stroke the cost is clamped.
	if m.SeekTime(10*m.FullStrokePages) != m.SeekTime(m.FullStrokePages) {
		t.Error("full-stroke clamp missing")
	}
}

func TestEstimateChargesEveryAccess(t *testing.T) {
	m := DefaultTimeModel
	if m.Estimate(Stats{}) != 0 {
		t.Error("empty stats cost non-zero time")
	}
	short := Stats{Reads: 100, SeekTotal: 100} // avg seek 1
	long := Stats{Reads: 100, SeekTotal: 100_000}
	if m.Estimate(long) <= m.Estimate(short) {
		t.Errorf("longer seeks not more expensive: %v vs %v", m.Estimate(long), m.Estimate(short))
	}
	// The fixed rotation+transfer floor applies.
	if m.Estimate(short) < 100*(m.Rotation+m.Transfer) {
		t.Errorf("estimate below rotational floor: %v", m.Estimate(short))
	}
}

func TestEstimateReflectsSchedulingGains(t *testing.T) {
	// The elevator-vs-naive improvement must survive the time model:
	// same reads, smaller seeks, less estimated time.
	m := DefaultTimeModel
	naive := Stats{Reads: 7000, SeekTotal: 7000 * 1000}
	elevator := Stats{Reads: 7000, SeekTotal: 7000 * 75}
	if m.Estimate(elevator) >= m.Estimate(naive) {
		t.Errorf("elevator %v not cheaper than naive %v", m.Estimate(elevator), m.Estimate(naive))
	}
}
