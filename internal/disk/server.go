package disk

import (
	"sort"
	"sync"
	"time"

	"revelation/internal/metrics"
)

// Server is the "server-per-device" architecture sketched in Section 7
// of the paper: when multiple assembly operators (or parallel clones of
// one operator) issue requests against the same device, each assumes
// exclusive control and elevator scheduling degrades. A Server owns the
// device's request queue, batches outstanding requests from all
// clients, and services them in SCAN order, restoring the exclusive-
// control assumption.
type Server struct {
	dev Device

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []*request
	batchWait time.Duration
	retry     RetryPolicy
	retries   metrics.Counter
	closed    bool
	stopped   chan struct{}
}

type request struct {
	page PageID
	buf  []byte
	done chan error
}

// NewServer starts a request server for dev. Callers submit reads with
// Read; a background goroutine drains the queue in elevator order.
func NewServer(dev Device) *Server {
	s := &Server{dev: dev, stopped: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	go s.run()
	return s
}

// SetBatchWait makes the drain loop linger briefly after the first
// request of a batch arrives, accumulating outstanding requests from
// other clients before the SCAN sweep — anticipatory batching. Zero
// (the default) drains immediately.
func (s *Server) SetBatchWait(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batchWait = d
}

// SetRetry installs a retry-with-backoff policy on the read path:
// accesses that fail with a transient error (disk.Retryable) are
// repeated up to the policy's budget before the error is delivered to
// the client. The zero policy (the default) disables retries.
func (s *Server) SetRetry(rp RetryPolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retry = rp
}

// Retries reports how many read attempts the server has repeated
// after transient faults.
func (s *Server) Retries() int64 { return s.retries.Value() }

// RegisterMetrics exports the server's retry counter and live queue
// depth under the device label, and forwards to the underlying device.
func (s *Server) RegisterMetrics(r *metrics.Registry, dev string) {
	r.Attach("asm_disk_server_retries_total",
		"Read attempts repeated by the device server after transient faults.",
		&s.retries, "dev", dev)
	r.Attach("asm_disk_server_queue_depth",
		"Requests currently queued at the device server.",
		metrics.GaugeFunc(func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return int64(len(s.queue))
		}), "dev", dev)
	RegisterMetrics(s.dev, r, dev)
}

// Read reads page p through the server, blocking until serviced.
// The buffer contract matches Device.ReadPage. A Read that races with
// Close gets a definitive outcome: either it is serviced (the close
// drains the queue first) or it fails with ErrClosed; requests are
// never silently dropped.
func (s *Server) Read(p PageID, buf []byte) error {
	req := &request{page: p, buf: buf, done: make(chan error, 1)}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.queue = append(s.queue, req)
	s.cond.Signal()
	s.mu.Unlock()
	return <-req.done
}

// service performs one request's device read under the retry policy.
func (s *Server) service(req *request) error {
	s.mu.Lock()
	rp := s.retry
	s.mu.Unlock()
	retries, err := rp.Do(func() error { return s.dev.ReadPage(req.page, req.buf) })
	if retries > 0 {
		s.retries.Add(int64(retries))
	}
	return err
}

func (s *Server) run() {
	defer close(s.stopped)
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed && len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		wait := s.batchWait
		s.mu.Unlock()
		if wait > 0 {
			// Anticipatory batching: let concurrent clients queue up
			// so the sweep has something to order.
			time.Sleep(wait)
		}
		// Take the whole batch and service it in SCAN order starting
		// from the current head position.
		s.mu.Lock()
		batch := s.queue
		s.queue = nil
		s.mu.Unlock()

		head := s.dev.Head()
		sort.Slice(batch, func(i, j int) bool { return batch[i].page < batch[j].page })
		// Split at the head: service pages >= head ascending, then the
		// rest descending (one SCAN sweep and return).
		split := sort.Search(len(batch), func(i int) bool { return batch[i].page >= head })
		for i := split; i < len(batch); i++ {
			batch[i].done <- s.service(batch[i])
		}
		for i := split - 1; i >= 0; i-- {
			batch[i].done <- s.service(batch[i])
		}
	}
}

// Close shuts the server down after draining pending requests.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.stopped
		return
	}
	s.closed = true
	s.cond.Signal()
	s.mu.Unlock()
	<-s.stopped
}
