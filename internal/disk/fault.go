package disk

import (
	"errors"
	"sync/atomic"
	"time"
)

// Fault taxonomy. The paper's evaluation assumes a perfectly reliable
// device; a production system does not get one. Every I/O error the
// stack surfaces is classified into exactly two kinds:
//
//   - Transient: the access failed this time but a retry may succeed
//     (a queue timeout, a recoverable media hiccup). Wrapped around
//     ErrTransient so errors.Is classifies it anywhere up the stack.
//   - Permanent: the page is gone and retrying is pointless (an
//     unrecoverable media error). Wrapped around ErrPermanent.
//
// Errors that wrap neither sentinel (ErrOutOfRange, ErrClosed,
// ErrBadLength, decode failures above the device) are treated as
// permanent by every retry loop: only explicitly transient errors are
// worth repeating.
var (
	// ErrTransient marks an I/O error that may succeed on retry.
	ErrTransient = errors.New("disk: transient I/O error")
	// ErrPermanent marks an unrecoverable page error.
	ErrPermanent = errors.New("disk: permanent page error")
	// ErrCrashed marks a device killed by a crash point (see
	// CrashPoint): every access after the crash fails with it until
	// Revive. It deliberately wraps neither retry sentinel — retrying
	// into a dead machine is pointless; the caller must stop and let
	// recovery run.
	ErrCrashed = errors.New("disk: device crashed")
)

// Retryable reports whether err is worth retrying: only errors that
// declare themselves transient are.
func Retryable(err error) bool { return errors.Is(err, ErrTransient) }

// RetryPolicy bounds a retry-with-exponential-backoff loop. The zero
// value disables retries (a single attempt, no backoff).
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first;
	// values below 2 mean "no retries".
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further
	// retry doubles it.
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling; zero means uncapped.
	MaxBackoff time.Duration
}

// DefaultRetryPolicy is a sensible production default: four attempts
// with 100µs–10ms exponential backoff.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 4,
	BaseBackoff: 100 * time.Microsecond,
	MaxBackoff:  10 * time.Millisecond,
}

// Enabled reports whether the policy performs any retries at all.
func (rp RetryPolicy) Enabled() bool { return rp.MaxAttempts > 1 }

// Backoff returns the delay before the given retry (0 = first retry),
// doubling from BaseBackoff and saturating at MaxBackoff.
func (rp RetryPolicy) Backoff(retry int) time.Duration {
	d := rp.BaseBackoff
	for i := 0; i < retry; i++ {
		d *= 2
		if rp.MaxBackoff > 0 && d >= rp.MaxBackoff {
			return rp.MaxBackoff
		}
	}
	if rp.MaxBackoff > 0 && d > rp.MaxBackoff {
		d = rp.MaxBackoff
	}
	return d
}

// Do runs fn under the policy: it re-invokes fn after a backoff while
// fn keeps failing with a retryable error and attempts remain. It
// returns the last error and the number of retries performed.
func (rp RetryPolicy) Do(fn func() error) (retries int, err error) {
	return rp.DoJitter(nil, fn)
}

// DoJitter is Do with full jitter: when j is non-nil every backoff is
// drawn uniformly from (0, Backoff(attempt)] instead of the exact
// deterministic delay. Pass nil for the classic deterministic pacing.
func (rp RetryPolicy) DoJitter(j *Jitter, fn func() error) (retries int, err error) {
	attempts := rp.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 0; ; attempt++ {
		err = fn()
		if err == nil || !Retryable(err) || attempt+1 >= attempts {
			return attempt, err
		}
		if d := j.Backoff(rp, attempt); d > 0 {
			time.Sleep(d)
		}
	}
}

// Jitter draws full-jitter backoff delays from a seeded splitmix64
// stream: uniformly distributed in (0, ceiling], so simultaneous
// retry/reconnect loops across a fleet desynchronize instead of
// hammering their servers in lockstep. A nil *Jitter is valid and
// falls back to the deterministic RetryPolicy.Backoff — callers never
// need a guard. Safe for concurrent use.
type Jitter struct {
	state atomic.Uint64
}

// NewJitter builds a jitter source from seed. Two sources with the
// same seed produce the same delay sequence, so jittered pacing stays
// reproducible in tests.
func NewJitter(seed int64) *Jitter {
	j := &Jitter{}
	j.state.Store(uint64(seed)*0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15)
	return j
}

// next is one splitmix64 step.
func (j *Jitter) next() uint64 {
	z := j.state.Add(0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Backoff returns the delay before the given retry: uniform in
// (0, rp.Backoff(retry)] for a non-nil source, exactly rp.Backoff(retry)
// for nil.
func (j *Jitter) Backoff(rp RetryPolicy, retry int) time.Duration {
	d := rp.Backoff(retry)
	if j == nil || d <= 0 {
		return d
	}
	return 1 + time.Duration(j.next()%uint64(d))
}
