package disk

import (
	"context"
	"fmt"
	"sync"

	"revelation/internal/metrics"
	"revelation/internal/trace"
)

// Striped is a Device composed of several sub-devices with round-robin
// page striping — the "database stored on more than one physical
// device" situation of the paper's Section 7. Each sub-device keeps
// its own head and seek accounting; Stats aggregates them, so the
// average-seek metric reflects the combined movement of all arms.
//
// Global page g maps to device (g / StripeUnit) mod N, local page
// (g / (StripeUnit*N)) * StripeUnit + g mod StripeUnit.
type Striped struct {
	devs []Device
	unit int

	mu     sync.Mutex
	size   int
	last   PageID // last global page touched, for Head()
	closed bool
}

// NewStriped builds a striped device over devs with the given stripe
// unit in pages (minimum 1). All sub-devices must share a page size
// and start empty; Allocate grows them in lockstep.
func NewStriped(devs []Device, unit int) (*Striped, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("disk: striped device needs at least one sub-device")
	}
	if unit < 1 {
		unit = 1
	}
	ps := devs[0].PageSize()
	for _, d := range devs[1:] {
		if d.PageSize() != ps {
			return nil, fmt.Errorf("disk: striped sub-devices disagree on page size")
		}
	}
	return &Striped{devs: devs, unit: unit}, nil
}

// Devices exposes the sub-devices (for per-device statistics).
func (s *Striped) Devices() []Device { return s.devs }

// SetTracer implements TracerSetter by forwarding the tracer to every
// arm: traced pages and heads are arm-local, which is the physically
// meaningful view (each arm moves independently).
func (s *Striped) SetTracer(t *trace.Tracer) {
	for _, d := range s.devs {
		AttachTracer(d, t)
	}
}

// RegisterMetrics implements MetricsRegistrar by registering every arm
// under "<dev><index>": each arm's head and seeks are the physically
// meaningful ones, and a scraper can aggregate families across the dev
// label when it wants the combined view.
func (s *Striped) RegisterMetrics(r *metrics.Registry, dev string) {
	for i, d := range s.devs {
		RegisterMetrics(d, r, fmt.Sprintf("%s%d", dev, i))
	}
}

// DeviceOf reports which sub-device a global page lives on — the
// routing the multi-device elevator scheduler needs.
func (s *Striped) DeviceOf(p PageID) int {
	return int(p) / s.unit % len(s.devs)
}

func (s *Striped) route(p PageID) (int, PageID) {
	g := int(p)
	dev := g / s.unit % len(s.devs)
	local := g/(s.unit*len(s.devs))*s.unit + g%s.unit
	return dev, PageID(local)
}

// ReadPage implements Device.
func (s *Striped) ReadPage(p PageID, buf []byte) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if int(p) >= s.size {
		s.mu.Unlock()
		return fmt.Errorf("%w: read page %d of %d", ErrOutOfRange, p, s.size)
	}
	s.last = p
	s.mu.Unlock()
	dev, local := s.route(p)
	return s.devs[dev].ReadPage(local, buf)
}

// ReadPageCtx implements CtxReader by routing the ctx-aware read to
// the owning arm.
func (s *Striped) ReadPageCtx(ctx context.Context, p PageID, buf []byte) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if int(p) >= s.size {
		s.mu.Unlock()
		return fmt.Errorf("%w: read page %d of %d", ErrOutOfRange, p, s.size)
	}
	s.last = p
	s.mu.Unlock()
	dev, local := s.route(p)
	return ReadPageCtx(ctx, s.devs[dev], local, buf)
}

// WritePage implements Device.
func (s *Striped) WritePage(p PageID, buf []byte) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if int(p) >= s.size {
		s.mu.Unlock()
		return fmt.Errorf("%w: write page %d of %d", ErrOutOfRange, p, s.size)
	}
	s.last = p
	s.mu.Unlock()
	dev, local := s.route(p)
	return s.devs[dev].WritePage(local, buf)
}

// Allocate implements Device: it grows the global address space, and
// each sub-device by whatever its share of the new stripes is.
func (s *Striped) Allocate(n int) (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return InvalidPage, ErrClosed
	}
	first := PageID(s.size)
	newSize := s.size + n
	// Each sub-device must cover the highest local page mapped to it.
	for i, d := range s.devs {
		need := s.localPagesFor(newSize, i)
		if grow := need - d.NumPages(); grow > 0 {
			if _, err := d.Allocate(grow); err != nil {
				return InvalidPage, err
			}
		}
	}
	s.size = newSize
	return first, nil
}

// localPagesFor computes how many local pages device i needs to back a
// global size.
func (s *Striped) localPagesFor(globalSize, dev int) int {
	if globalSize == 0 {
		return 0
	}
	// Count global pages < globalSize routed to dev.
	fullRounds := globalSize / (s.unit * len(s.devs))
	rem := globalSize % (s.unit * len(s.devs))
	n := fullRounds * s.unit
	// The remainder fills devices 0..k in stripe-unit chunks.
	remDev := rem / s.unit
	switch {
	case dev < remDev:
		n += s.unit
	case dev == remDev:
		n += rem % s.unit
	}
	return n
}

// NumPages implements Device.
func (s *Striped) NumPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// PageSize implements Device.
func (s *Striped) PageSize() int { return s.devs[0].PageSize() }

// Head implements Device: the last global page touched. Sub-device
// heads are the physically meaningful ones; schedulers that care use
// DeviceOf and per-device state.
func (s *Striped) Head() PageID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Stats implements Device: the aggregate over all arms.
func (s *Striped) Stats() Stats {
	var total Stats
	for _, d := range s.devs {
		st := d.Stats()
		total.Reads += st.Reads
		total.Writes += st.Writes
		total.SeekTotal += st.SeekTotal
		total.SeekReads += st.SeekReads
		if st.MaxSeek > total.MaxSeek {
			total.MaxSeek = st.MaxSeek
		}
	}
	return total
}

// ResetStats implements Device.
func (s *Striped) ResetStats() {
	for _, d := range s.devs {
		d.ResetStats()
	}
}

// ResetHead implements Device.
func (s *Striped) ResetHead() {
	s.mu.Lock()
	s.last = 0
	s.mu.Unlock()
	for _, d := range s.devs {
		d.ResetHead()
	}
}

// Close implements Device.
func (s *Striped) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	var first error
	for _, d := range s.devs {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
