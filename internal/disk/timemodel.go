package disk

import (
	"math"
	"time"
)

// TimeModel converts the simulated seek statistics into an estimated
// service time, using the classical square-root seek curve (seek time
// grows with the square root of the distance once the arm is moving —
// cf. Scranton et al., "The Access Time Myth", which the paper cites
// when it argues seek distance is the cost that matters).
//
// The zero value is unusable; start from DefaultTimeModel.
type TimeModel struct {
	// SeekStartup is the fixed cost of any non-zero seek (arm
	// acceleration + settle).
	SeekStartup time.Duration
	// SeekFullStroke is the cost of a seek across FullStrokePages.
	SeekFullStroke time.Duration
	// FullStrokePages scales distances: a seek of d pages costs
	// SeekStartup + (SeekFullStroke-SeekStartup)·sqrt(d/FullStrokePages).
	FullStrokePages int64
	// Rotation is the average rotational latency per access.
	Rotation time.Duration
	// Transfer is the page transfer time.
	Transfer time.Duration
}

// DefaultTimeModel approximates a late-1980s disk of the paper's era:
// ~4 ms minimum seek, ~28 ms full stroke over ~50k pages (a ~50 MB
// spindle of 1 KB pages), 8.3 ms average rotation (3600 rpm), 1 ms
// transfer.
var DefaultTimeModel = TimeModel{
	SeekStartup:     4 * time.Millisecond,
	SeekFullStroke:  28 * time.Millisecond,
	FullStrokePages: 50_000,
	Rotation:        8300 * time.Microsecond,
	Transfer:        time.Millisecond,
}

// SeekTime estimates the cost of one seek of d pages.
func (m TimeModel) SeekTime(d int64) time.Duration {
	if d <= 0 {
		return 0
	}
	frac := math.Sqrt(float64(d) / float64(m.FullStrokePages))
	if frac > 1 {
		frac = 1
	}
	return m.SeekStartup + time.Duration(float64(m.SeekFullStroke-m.SeekStartup)*frac)
}

// Estimate converts aggregate statistics into service time, charging
// every access rotation + transfer and the average observed seek per
// read (the statistics do not retain each individual distance, so the
// average is used; with SCAN scheduling distances are fairly uniform).
func (m TimeModel) Estimate(s Stats) time.Duration {
	accesses := s.Reads + s.Writes
	if accesses == 0 {
		return 0
	}
	fixed := time.Duration(accesses) * (m.Rotation + m.Transfer)
	avg := s.SeekTotal / accesses
	return fixed + time.Duration(accesses)*m.SeekTime(avg)
}
