// Package disk models the dedicated disk device of the paper's
// evaluation: a linear array of fixed-size pages with a single head.
// Every physical read or write moves the head and accounts the seek
// distance in pages, which is the paper's performance metric
// ("average seek distance, in pages of size 1K bytes").
//
// The device is deliberately simple and deterministic: the query
// processor is assumed to have exclusive control over the request
// queue, exactly as in the paper (Section 6), so scheduling decisions
// made by the assembly operator translate directly into head movement.
package disk

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"revelation/internal/metrics"
	"revelation/internal/qtrace"
	"revelation/internal/trace"
)

// PageID addresses a page on a device. Pages are numbered from zero.
type PageID uint32

// InvalidPage is a sentinel for "no page".
const InvalidPage = PageID(^uint32(0))

// DefaultPageSize is the page size used throughout the paper: 1 KB.
const DefaultPageSize = 1024

// Common errors returned by devices.
var (
	ErrOutOfRange = errors.New("disk: page out of range")
	ErrClosed     = errors.New("disk: device closed")
	ErrBadLength  = errors.New("disk: buffer length does not match page size")
)

// Stats accumulates the device counters the benchmarks report.
type Stats struct {
	Reads     int64 // physical page reads
	Writes    int64 // physical page writes
	SeekTotal int64 // total head movement in pages (reads and writes)
	SeekReads int64 // head movement attributable to reads only
	MaxSeek   int64 // largest single seek observed
}

// AvgSeekPerRead is the paper's metric: total seek distance divided by
// the number of reads. It returns zero when no reads happened.
func (s Stats) AvgSeekPerRead() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.SeekReads) / float64(s.Reads)
}

// Sub returns the counter difference s - prev, for reporting a run's
// activity from two snapshots of a device that is never reset. MaxSeek
// is not a counter and cannot be differenced; the result carries s's
// value, an upper bound for the interval.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Reads:     s.Reads - prev.Reads,
		Writes:    s.Writes - prev.Writes,
		SeekTotal: s.SeekTotal - prev.SeekTotal,
		SeekReads: s.SeekReads - prev.SeekReads,
		MaxSeek:   s.MaxSeek,
	}
}

// Device is a page-addressed block device with seek accounting.
// Implementations must be safe for concurrent use.
type Device interface {
	// ReadPage copies page p into buf, which must be exactly PageSize
	// bytes long.
	ReadPage(p PageID, buf []byte) error
	// WritePage copies buf (exactly PageSize bytes) into page p.
	WritePage(p PageID, buf []byte) error
	// Allocate extends the device by n pages and returns the first new
	// page id.
	Allocate(n int) (PageID, error)
	// NumPages reports the current device size in pages.
	NumPages() int
	// PageSize reports the page size in bytes.
	PageSize() int
	// Head reports the current head position.
	Head() PageID
	// Stats returns a snapshot of the device counters.
	Stats() Stats
	// ResetStats zeroes the counters without moving the head.
	ResetStats()
	// ResetHead parks the head at page 0 without accounting a seek;
	// experiments call it so every run starts from the same position.
	ResetHead()
	// Close releases the device.
	Close() error
}

// FaultFunc lets tests inject I/O errors: it is consulted before every
// physical access with the page id and whether the access is a write.
// Returning a non-nil error aborts the access.
type FaultFunc func(p PageID, write bool) error

// TracerSetter is implemented by devices that accept an event tracer.
// Wrapper devices forward the tracer to the devices they wrap.
type TracerSetter interface {
	SetTracer(t *trace.Tracer)
}

// AttachTracer installs t on dev when the device supports tracing
// (pass nil to detach). It reports whether the device accepted it.
func AttachTracer(dev Device, t *trace.Tracer) bool {
	if ts, ok := dev.(TracerSetter); ok {
		ts.SetTracer(t)
		return true
	}
	return false
}

// Sim is the standard simulated device backed by an in-memory page
// store. It implements Device.
type Sim struct {
	mu       sync.Mutex
	pageSize int
	pages    [][]byte
	head     PageID
	cells    devCells
	fault    FaultFunc
	tr       *trace.Tracer
	closed   bool
}

// NewSim creates a simulated device with the given page size and an
// initial capacity of n pages (all zeroed).
func NewSim(pageSize, n int) *Sim {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	d := &Sim{pageSize: pageSize}
	d.pages = make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		d.pages = append(d.pages, make([]byte, pageSize))
	}
	return d
}

// New creates a simulated device with the default 1 KB page size.
func New(n int) *Sim { return NewSim(DefaultPageSize, n) }

// SetFault installs an I/O fault injector; pass nil to clear it.
func (d *Sim) SetFault(f FaultFunc) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.fault = f
}

// SetTracer implements TracerSetter: every subsequent physical access
// emits a disk event carrying the head position before the access and
// the seek distance it cost. Pass nil to disable tracing; the disabled
// hot path pays one branch.
func (d *Sim) SetTracer(t *trace.Tracer) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tr = t
}

// seekTo moves the head to p, accounts the distance, and returns it.
// Caller holds mu.
func (d *Sim) seekTo(p PageID, read bool) int64 {
	var dist int64
	if p >= d.head {
		dist = int64(p - d.head)
	} else {
		dist = int64(d.head - p)
	}
	d.cells.account(dist, read)
	d.head = p
	return dist
}

// RegisterMetrics implements MetricsRegistrar: the registry observes the
// very cells the access path updates, so a live scrape and Stats() can
// never disagree.
func (d *Sim) RegisterMetrics(r *metrics.Registry, dev string) {
	d.cells.register(r, dev,
		func() int64 { return int64(d.Head()) },
		func() int64 { return int64(d.NumPages()) })
}

// ReadPage implements Device.
func (d *Sim) ReadPage(p PageID, buf []byte) error {
	return d.readPage(p, buf, nil)
}

// ReadPageCtx implements CtxReader: the read is additionally charged
// to the query span in ctx (nil span: identical to ReadPage).
func (d *Sim) ReadPageCtx(ctx context.Context, p PageID, buf []byte) error {
	return d.readPage(p, buf, spanFrom(ctx))
}

func (d *Sim) readPage(p PageID, buf []byte, sp *qtrace.Span) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if len(buf) != d.pageSize {
		return ErrBadLength
	}
	if int(p) >= len(d.pages) {
		return fmt.Errorf("%w: read page %d of %d", ErrOutOfRange, p, len(d.pages))
	}
	if d.fault != nil {
		if err := d.fault(p, false); err != nil {
			return err
		}
	}
	if d.tr != nil {
		start := time.Now()
		prev := d.head
		dist := d.seekTo(p, true)
		d.cells.reads.Inc()
		sp.OnRead(dist)
		copy(buf, d.pages[p])
		d.tr.DiskQ(trace.KindRead, int64(p), int64(prev), dist, sp.QID())
		d.tr.Observe("disk/read", time.Since(start))
		return nil
	}
	dist := d.seekTo(p, true)
	d.cells.reads.Inc()
	sp.OnRead(dist)
	copy(buf, d.pages[p])
	return nil
}

// WritePage implements Device.
func (d *Sim) WritePage(p PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if len(buf) != d.pageSize {
		return ErrBadLength
	}
	if int(p) >= len(d.pages) {
		return fmt.Errorf("%w: write page %d of %d", ErrOutOfRange, p, len(d.pages))
	}
	if d.fault != nil {
		if err := d.fault(p, true); err != nil {
			return err
		}
	}
	if d.tr != nil {
		start := time.Now()
		prev := d.head
		dist := d.seekTo(p, false)
		d.cells.writes.Inc()
		copy(d.pages[p], buf)
		d.tr.Disk(trace.KindWrite, int64(p), int64(prev), dist)
		d.tr.Observe("disk/write", time.Since(start))
		return nil
	}
	d.seekTo(p, false)
	d.cells.writes.Inc()
	copy(d.pages[p], buf)
	return nil
}

// Allocate implements Device.
func (d *Sim) Allocate(n int) (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return InvalidPage, ErrClosed
	}
	if n < 0 {
		return InvalidPage, fmt.Errorf("disk: allocate %d pages", n)
	}
	first := PageID(len(d.pages))
	for i := 0; i < n; i++ {
		d.pages = append(d.pages, make([]byte, d.pageSize))
	}
	return first, nil
}

// NumPages implements Device.
func (d *Sim) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pages)
}

// PageSize implements Device.
func (d *Sim) PageSize() int { return d.pageSize }

// Head implements Device.
func (d *Sim) Head() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.head
}

// Stats implements Device. The counters live in atomic cells, so this
// is safe to call from a scraper while accesses are in flight.
func (d *Sim) Stats() Stats { return d.cells.stats() }

// ResetStats implements Device.
func (d *Sim) ResetStats() { d.cells.reset() }

// ResetHead implements Device.
func (d *Sim) ResetHead() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.head = 0
}

// Close implements Device.
func (d *Sim) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	return nil
}
