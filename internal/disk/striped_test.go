package disk

import (
	"errors"
	"testing"
)

func newStriped(t *testing.T, n, unit int) (*Striped, []*Sim) {
	t.Helper()
	var devs []Device
	var sims []*Sim
	for i := 0; i < n; i++ {
		d := New(0)
		devs = append(devs, d)
		sims = append(sims, d)
	}
	s, err := NewStriped(devs, unit)
	if err != nil {
		t.Fatal(err)
	}
	return s, sims
}

func TestStripedRouting(t *testing.T) {
	s, _ := newStriped(t, 3, 2)
	cases := []struct {
		global PageID
		dev    int
		local  PageID
	}{
		{0, 0, 0}, {1, 0, 1},
		{2, 1, 0}, {3, 1, 1},
		{4, 2, 0}, {5, 2, 1},
		{6, 0, 2}, {7, 0, 3},
		{8, 1, 2},
		{12, 0, 4},
	}
	for _, c := range cases {
		dev, local := s.route(c.global)
		if dev != c.dev || local != c.local {
			t.Errorf("route(%d) = (%d, %d), want (%d, %d)", c.global, dev, local, c.dev, c.local)
		}
		if s.DeviceOf(c.global) != c.dev {
			t.Errorf("DeviceOf(%d) = %d, want %d", c.global, s.DeviceOf(c.global), c.dev)
		}
	}
}

func TestStripedReadWriteRoundTrip(t *testing.T) {
	s, sims := newStriped(t, 4, 1)
	if _, err := s.Allocate(32); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, s.PageSize())
	for p := PageID(0); p < 32; p++ {
		buf[0] = byte(p)
		if err := s.WritePage(p, buf); err != nil {
			t.Fatalf("write %d: %v", p, err)
		}
	}
	out := make([]byte, s.PageSize())
	for p := PageID(0); p < 32; p++ {
		if err := s.ReadPage(p, out); err != nil {
			t.Fatalf("read %d: %v", p, err)
		}
		if out[0] != byte(p) {
			t.Fatalf("page %d holds %d", p, out[0])
		}
	}
	// Each of the 4 sub-devices should hold 8 local pages.
	for i, sim := range sims {
		if sim.NumPages() != 8 {
			t.Errorf("device %d has %d pages, want 8", i, sim.NumPages())
		}
	}
}

func TestStripedAllocateUneven(t *testing.T) {
	s, sims := newStriped(t, 3, 2)
	if _, err := s.Allocate(7); err != nil { // 7 pages: dev0 gets 2+1, dev1 2, dev2 2
		t.Fatal(err)
	}
	want := []int{3, 2, 2}
	for i, sim := range sims {
		if sim.NumPages() != want[i] {
			t.Errorf("device %d has %d local pages, want %d", i, sim.NumPages(), want[i])
		}
	}
	buf := make([]byte, s.PageSize())
	if err := s.ReadPage(6, buf); err != nil {
		t.Errorf("read last page: %v", err)
	}
	if err := s.ReadPage(7, buf); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("read past end err = %v", err)
	}
}

func TestStripedStatsAggregate(t *testing.T) {
	s, sims := newStriped(t, 2, 1)
	if _, err := s.Allocate(20); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, s.PageSize())
	// Pages 0,2,4,... on dev0 (locals 0,1,2,...); odd on dev1.
	for _, p := range []PageID{0, 4, 8, 1, 9} {
		if err := s.ReadPage(p, buf); err != nil {
			t.Fatal(err)
		}
	}
	// dev0 locals: 0,2,4 -> seeks 0+2+2 = 4; dev1 locals: 0,4 -> 0+4 = 4.
	if got := sims[0].Stats().SeekReads; got != 4 {
		t.Errorf("dev0 seeks = %d, want 4", got)
	}
	if got := sims[1].Stats().SeekReads; got != 4 {
		t.Errorf("dev1 seeks = %d, want 4", got)
	}
	agg := s.Stats()
	if agg.Reads != 5 || agg.SeekReads != 8 {
		t.Errorf("aggregate = %+v", agg)
	}
	s.ResetStats()
	if s.Stats().Reads != 0 {
		t.Error("ResetStats did not propagate")
	}
}

func TestStripedHeadTracksLastGlobal(t *testing.T) {
	s, _ := newStriped(t, 2, 1)
	if _, err := s.Allocate(8); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, s.PageSize())
	if err := s.ReadPage(5, buf); err != nil {
		t.Fatal(err)
	}
	if s.Head() != 5 {
		t.Errorf("Head = %d", s.Head())
	}
	s.ResetHead()
	if s.Head() != 0 {
		t.Errorf("Head after reset = %d", s.Head())
	}
}

func TestStripedClose(t *testing.T) {
	s, _ := newStriped(t, 2, 1)
	if _, err := s.Allocate(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, s.PageSize())
	if err := s.ReadPage(0, buf); !errors.Is(err, ErrClosed) {
		t.Errorf("read after close err = %v", err)
	}
}

func TestStripedValidation(t *testing.T) {
	if _, err := NewStriped(nil, 1); err == nil {
		t.Error("empty device list accepted")
	}
	a := NewSim(512, 0)
	b := NewSim(1024, 0)
	if _, err := NewStriped([]Device{a, b}, 1); err == nil {
		t.Error("mismatched page sizes accepted")
	}
}
