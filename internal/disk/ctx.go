package disk

import (
	"context"

	"revelation/internal/qtrace"
)

// CtxReader is implemented by devices that can attribute a physical
// read to the per-query span carried in a context (see
// internal/qtrace). The attribution happens inside the device's own
// mutex, where the seek distance is computed, so per-query seek
// accounting is exact even when queries interleave on one device.
type CtxReader interface {
	ReadPageCtx(ctx context.Context, p PageID, buf []byte) error
}

// ReadPageCtx reads page p through dev, attributing the read to the
// query span in ctx when the device supports it. With a nil context —
// or a device without ctx support — it is exactly ReadPage.
func ReadPageCtx(ctx context.Context, dev Device, p PageID, buf []byte) error {
	if ctx != nil {
		if cr, ok := dev.(CtxReader); ok {
			return cr.ReadPageCtx(ctx, p, buf)
		}
	}
	return dev.ReadPage(p, buf)
}

// spanFrom is the shared nil-safe span extraction devices use.
func spanFrom(ctx context.Context) *qtrace.Span { return qtrace.From(ctx) }
