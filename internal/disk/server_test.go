package disk

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestServerReadCloseRace is the regression test for the Read/Close
// interaction: a Read racing with Close must either be serviced or
// fail with ErrClosed — never hang and never return a third outcome.
// Run under -race it also checks the queue handoff for data races.
func TestServerReadCloseRace(t *testing.T) {
	for iter := 0; iter < 40; iter++ {
		d := New(128)
		s := NewServer(d)
		var wg sync.WaitGroup
		unexpected := make(chan error, 8*16)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				buf := make([]byte, DefaultPageSize)
				for k := 0; k < 16; k++ {
					err := s.Read(PageID((g*16+k)%128), buf)
					if err != nil && !errors.Is(err, ErrClosed) {
						unexpected <- err
					}
				}
			}(g)
		}
		// Close concurrently with the in-flight readers.
		s.Close()
		wg.Wait()
		close(unexpected)
		for err := range unexpected {
			t.Fatalf("iter %d: read returned non-definitive error: %v", iter, err)
		}
		// After Close returns, every further Read is definitively closed.
		if err := s.Read(0, make([]byte, DefaultPageSize)); !errors.Is(err, ErrClosed) {
			t.Fatalf("iter %d: read after close = %v, want ErrClosed", iter, err)
		}
		// Double close must be idempotent.
		s.Close()
	}
}

func TestServerRetryAbsorbsTransientFaults(t *testing.T) {
	d := New(64)
	var mu sync.Mutex
	fails := map[PageID]int{5: 2, 9: 1}
	d.SetFault(func(p PageID, write bool) error {
		mu.Lock()
		defer mu.Unlock()
		if fails[p] > 0 {
			fails[p]--
			return fmt.Errorf("%w: page %d", ErrTransient, p)
		}
		return nil
	})
	s := NewServer(d)
	defer s.Close()
	s.SetRetry(RetryPolicy{MaxAttempts: 4})

	buf := make([]byte, DefaultPageSize)
	for _, p := range []PageID{5, 9, 1} {
		if err := s.Read(p, buf); err != nil {
			t.Fatalf("read %d through retrying server: %v", p, err)
		}
	}
	if got := s.Retries(); got != 3 {
		t.Errorf("Retries = %d, want 3", got)
	}
}

func TestServerRetryBudgetExhausts(t *testing.T) {
	d := New(64)
	d.SetFault(func(p PageID, write bool) error {
		return fmt.Errorf("%w: page %d", ErrTransient, p)
	})
	s := NewServer(d)
	defer s.Close()
	s.SetRetry(RetryPolicy{MaxAttempts: 3})
	err := s.Read(2, make([]byte, DefaultPageSize))
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("exhausted retries: err = %v, want ErrTransient", err)
	}
}

func TestServerNoRetryOnPermanent(t *testing.T) {
	d := New(64)
	var calls int
	var mu sync.Mutex
	d.SetFault(func(p PageID, write bool) error {
		mu.Lock()
		calls++
		mu.Unlock()
		return fmt.Errorf("%w: page %d", ErrPermanent, p)
	})
	s := NewServer(d)
	defer s.Close()
	s.SetRetry(RetryPolicy{MaxAttempts: 5})
	if err := s.Read(3, make([]byte, DefaultPageSize)); !errors.Is(err, ErrPermanent) {
		t.Fatalf("err = %v, want ErrPermanent", err)
	}
	if calls != 1 {
		t.Errorf("permanent error was retried: %d device attempts", calls)
	}
	if got := s.Retries(); got != 0 {
		t.Errorf("Retries = %d, want 0", got)
	}
}
