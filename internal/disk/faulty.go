package disk

import (
	"context"
	"fmt"
	"sync"
	"time"

	"revelation/internal/metrics"
	"revelation/internal/qtrace"
	"revelation/internal/trace"
)

// FaultConfig parameterizes deterministic fault injection. All
// decisions are pure functions of (Seed, page id), so a run over a
// Faulty device is reproducible regardless of request order, and a
// test can predict exactly which pages are poisoned.
type FaultConfig struct {
	// Seed drives every injection decision. Two Faulty devices with
	// the same seed and rates fault the same pages.
	Seed int64
	// TransientRate is the fraction of pages whose reads initially
	// fail with ErrTransient and then succeed (0..1).
	TransientRate float64
	// TransientFailures is how many consecutive failures a transient
	// page serves before recovering; values < 1 mean 1.
	TransientFailures int
	// PermanentRate is the fraction of pages that always fail with
	// ErrPermanent (0..1). Permanent wins over transient on overlap.
	PermanentRate float64
	// LatencyRate is the fraction of pages whose accesses are delayed
	// by Latency — a latency spike model for timing-sensitive callers
	// (0..1). Like the error rates, the decision is a pure function of
	// (Seed, page id): a spiky page is always spiky, so timeout and
	// hedging paths are testable deterministically.
	LatencyRate float64
	// Latency is the injected spike duration.
	Latency time.Duration
	// StallRate is the fraction of pages whose accesses stall for
	// Stall — the slow-read/straggler model (a wedged server, a deep
	// queue) as opposed to LatencyRate's short spikes. Seeded per page
	// like every other decision, so a hedging client can be pointed at
	// a page that is known to stall. Stalled accesses still succeed.
	StallRate float64
	// Stall is the injected stall duration.
	Stall time.Duration
	// Writes extends injection to WritePage; by default only reads
	// fault, which matches the assembly workload (read-dominated).
	Writes bool

	// Brownout models a sustained outage episode — a wedged server, a
	// failing disk limping before it dies — driven by the device's
	// access clock rather than wall time, so breaker open/half-open
	// transitions are exercisable deterministically. The episode spans
	// accesses [BrownoutStart, BrownoutStart+BrownoutLen): intensity
	// ramps up linearly over the first BrownoutRamp accesses, holds at
	// full for the middle, and ramps back down over the last
	// BrownoutRamp. Every access during the episode stalls for
	// intensity × BrownoutStall; accesses at full intensity also fail
	// with ErrTransient (the plateau is an outage, the ramps are a
	// slowdown). BrownoutLen <= 0 disables the profile.
	BrownoutStart int64
	BrownoutLen   int64
	BrownoutRamp  int64
	BrownoutStall time.Duration
}

// FaultStats counts what the injector actually did.
type FaultStats struct {
	Transient int64 // transient errors injected
	Permanent int64 // permanent errors injected
	Latency   int64 // latency spikes injected
	Stalls    int64 // stalls injected
	Brownouts int64 // accesses refused at full brownout intensity
}

// Faulty wraps any Device with deterministic, seeded fault injection.
// It implements the full Device interface, so it can sit between a
// buffer pool and a Sim, a Striped device, or another Faulty.
//
// A fresh Faulty starts disarmed (zero config): populate the database
// first, then arm the injector with SetConfig.
type Faulty struct {
	dev Device

	mu sync.Mutex
	// cfg is the armed configuration; the zero value injects nothing.
	cfg FaultConfig
	// remaining tracks how many transient failures each faulty page
	// still owes before it recovers.
	remaining map[PageID]int
	// accesses is the brownout clock: injection decisions seen so far
	// (reads always; writes only when cfg.Writes).
	accesses int64
	// crash, when set, kills the device at a chosen write ordinal. The
	// same CrashPoint may be shared by several Faulty devices so the
	// write clock counts globally.
	crash *CrashPoint
	tr    *trace.Tracer

	// Injection counters are metric cells so a live registry observes
	// exactly what FaultStats() reports.
	transient metrics.Counter
	permanent metrics.Counter
	latency   metrics.Counter
	stalls    metrics.Counter
	brownouts metrics.Counter
}

// NewFaulty wraps dev with the given fault configuration.
func NewFaulty(dev Device, cfg FaultConfig) *Faulty {
	return &Faulty{dev: dev, cfg: cfg, remaining: map[PageID]int{}}
}

// Inner returns the wrapped device.
func (f *Faulty) Inner() Device { return f.dev }

// SetTracer implements TracerSetter: injected faults emit disk fault
// events, and the tracer is forwarded to the wrapped device so real
// accesses trace too.
func (f *Faulty) SetTracer(t *trace.Tracer) {
	f.mu.Lock()
	f.tr = t
	f.mu.Unlock()
	AttachTracer(f.dev, t)
}

// SetConfig re-arms the injector, resetting transient failure budgets
// and counters. Arming with the zero FaultConfig disarms it.
func (f *Faulty) SetConfig(cfg FaultConfig) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cfg = cfg
	f.remaining = map[PageID]int{}
	f.accesses = 0
	f.transient.Reset()
	f.permanent.Reset()
	f.latency.Reset()
	f.stalls.Reset()
	f.brownouts.Reset()
}

// SetCrash attaches a crash point. Pass the same *CrashPoint to every
// Faulty in the system so the write clock orders writes globally; pass
// nil to detach.
func (f *Faulty) SetCrash(c *CrashPoint) {
	f.mu.Lock()
	f.crash = c
	f.mu.Unlock()
}

// CrashAfter arms a fresh crash point on this device alone: the device
// dies after its n-th write, tearing that write at a seeded sector
// boundary when torn is set. It returns the point so the caller can
// inspect, revive, or share it with other devices via SetCrash.
func (f *Faulty) CrashAfter(n int64, torn bool, seed int64) *CrashPoint {
	c := NewCrashPoint(n, torn, seed)
	f.SetCrash(c)
	return c
}

func (f *Faulty) crashPoint() *CrashPoint {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crash
}

// FaultStats returns a snapshot of the injection counters.
func (f *Faulty) FaultStats() FaultStats {
	return FaultStats{
		Transient: f.transient.Value(),
		Permanent: f.permanent.Value(),
		Latency:   f.latency.Value(),
		Stalls:    f.stalls.Value(),
		Brownouts: f.brownouts.Value(),
	}
}

// RegisterMetrics implements MetricsRegistrar: it exports the injection
// counters under the device label and forwards to the wrapped device so
// the whole stack is instrumented.
func (f *Faulty) RegisterMetrics(r *metrics.Registry, dev string) {
	r.Attach("asm_disk_faults_total", "Injected I/O faults by class.",
		&f.transient, "dev", dev, "class", "transient")
	r.Attach("asm_disk_faults_total", "Injected I/O faults by class.",
		&f.permanent, "dev", dev, "class", "permanent")
	r.Attach("asm_disk_latency_spikes_total", "Injected latency spikes.",
		&f.latency, "dev", dev)
	r.Attach("asm_disk_stalls_total", "Injected slow-access stalls.",
		&f.stalls, "dev", dev)
	r.Attach("asm_disk_brownouts_total", "Accesses refused at full brownout intensity.",
		&f.brownouts, "dev", dev)
	RegisterMetrics(f.dev, r, dev)
}

// Injection salts keep the decisions independent.
const (
	saltPermanent = 0x9E3779B97F4A7C15
	saltTransient = 0xC2B2AE3D27D4EB4F
	saltLatency   = 0x165667B19E3779F9
	saltTear      = 0x27D4EB2F165667C5
	saltStall     = 0x94D049BB133111EB
)

// mix is splitmix64: a cheap, well-distributed hash of the decision
// inputs. The low 53 bits become a uniform float in [0, 1).
func mix(seed int64, page PageID, salt uint64) float64 {
	z := uint64(seed) ^ uint64(page)*0x9E3779B97F4A7C15 ^ salt
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// PermanentlyFaulty reports whether the injector permanently fails
// page p under the current configuration. Tests use it to compute the
// poisoned set without replaying I/O.
func (f *Faulty) PermanentlyFaulty(p PageID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.permanentLocked(p)
}

func (f *Faulty) permanentLocked(p PageID) bool {
	return f.cfg.PermanentRate > 0 && mix(f.cfg.Seed, p, saltPermanent) < f.cfg.PermanentRate
}

// TransientlyFaulty reports whether page p starts out transiently
// failing under the current configuration (regardless of how many
// failures it has already served).
func (f *Faulty) TransientlyFaulty(p PageID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.transientLocked(p)
}

func (f *Faulty) transientLocked(p PageID) bool {
	return f.cfg.TransientRate > 0 && mix(f.cfg.Seed, p, saltTransient) < f.cfg.TransientRate
}

// Stalled reports whether accesses to page p stall under the current
// configuration. Hedging tests use it to find a page that is known to
// be slow without timing anything.
func (f *Faulty) Stalled(p PageID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stalledLocked(p)
}

func (f *Faulty) stalledLocked(p PageID) bool {
	return f.cfg.StallRate > 0 && mix(f.cfg.Seed, p, saltStall) < f.cfg.StallRate
}

// LatencySpiky reports whether accesses to page p take a latency spike
// under the current configuration.
func (f *Faulty) LatencySpiky(p PageID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cfg.LatencyRate > 0 && mix(f.cfg.Seed, p, saltLatency) < f.cfg.LatencyRate
}

// brownoutIntensity is the episode's intensity for the ord-th access:
// 0 outside the window, a linear ramp to 1 over the first (and last)
// BrownoutRamp accesses, and exactly 1 on the plateau between them.
func brownoutIntensity(cfg FaultConfig, ord int64) float64 {
	if cfg.BrownoutLen <= 0 {
		return 0
	}
	pos := ord - cfg.BrownoutStart
	if pos < 0 || pos >= cfg.BrownoutLen {
		return 0
	}
	ramp := cfg.BrownoutRamp
	if ramp < 0 {
		ramp = 0
	}
	if 2*ramp > cfg.BrownoutLen {
		ramp = cfg.BrownoutLen / 2
	}
	switch {
	case pos < ramp:
		return float64(pos+1) / float64(ramp+1)
	case pos >= cfg.BrownoutLen-ramp:
		return float64(cfg.BrownoutLen-pos) / float64(ramp+1)
	default:
		return 1
	}
}

// BrownoutIntensity reports the intensity the *next* access would see
// — 0 outside the configured episode, 1 on the plateau. Tests use it
// to walk the access clock to a known point in the episode.
func (f *Faulty) BrownoutIntensity() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return brownoutIntensity(f.cfg, f.accesses)
}

// inject decides the fate of one access before it reaches the device.
func (f *Faulty) inject(p PageID, write bool) error {
	return f.injectAs(p, write, nil)
}

// injectAs is inject with per-query attribution: injected faults are
// charged to sp and stamp their trace events with its query ID.
func (f *Faulty) injectAs(p PageID, write bool, sp *qtrace.Span) error {
	f.mu.Lock()
	if write && !f.cfg.Writes {
		f.mu.Unlock()
		return nil
	}
	var delay time.Duration
	if f.cfg.LatencyRate > 0 && mix(f.cfg.Seed, p, saltLatency) < f.cfg.LatencyRate {
		f.latency.Inc()
		delay = f.cfg.Latency
	}
	if f.stalledLocked(p) {
		f.stalls.Inc()
		delay += f.cfg.Stall
	}
	// The brownout clock ticks on every injection decision; the ramps
	// slow accesses down, the plateau refuses them outright.
	intensity := brownoutIntensity(f.cfg, f.accesses)
	f.accesses++
	if intensity > 0 {
		delay += time.Duration(intensity * float64(f.cfg.BrownoutStall))
	}
	var err error
	var class string
	switch {
	case intensity >= 1:
		f.brownouts.Inc()
		class = "transient"
		err = fmt.Errorf("%w: page %d: brownout", ErrTransient, p)
	case f.permanentLocked(p):
		f.permanent.Inc()
		class = "permanent"
		err = fmt.Errorf("%w: page %d", ErrPermanent, p)
	case f.transientLocked(p):
		left, seen := f.remaining[p]
		if !seen {
			left = f.cfg.TransientFailures
			if left < 1 {
				left = 1
			}
		}
		if left > 0 {
			f.remaining[p] = left - 1
			f.transient.Inc()
			class = "transient"
			err = fmt.Errorf("%w: page %d", ErrTransient, p)
		}
	}
	tr := f.tr
	f.mu.Unlock()
	if class != "" {
		sp.OnFault()
		tr.DiskFaultQ(int64(p), class, sp.QID())
	}
	// Sleep outside the lock so a latency spike on one page does not
	// stall concurrent accesses to others.
	if delay > 0 {
		time.Sleep(delay)
	}
	return err
}

// ReadPage implements Device.
func (f *Faulty) ReadPage(p PageID, buf []byte) error {
	if c := f.crashPoint(); c != nil && c.dead() {
		return fmt.Errorf("%w: read page %d", ErrCrashed, p)
	}
	if err := f.inject(p, false); err != nil {
		return err
	}
	return f.dev.ReadPage(p, buf)
}

// ReadPageCtx implements CtxReader: injected faults and the wrapped
// device's read are both charged to the query span in ctx.
func (f *Faulty) ReadPageCtx(ctx context.Context, p PageID, buf []byte) error {
	if c := f.crashPoint(); c != nil && c.dead() {
		return fmt.Errorf("%w: read page %d", ErrCrashed, p)
	}
	if err := f.injectAs(p, false, spanFrom(ctx)); err != nil {
		return err
	}
	return ReadPageCtx(ctx, f.dev, p, buf)
}

// WritePage implements Device.
func (f *Faulty) WritePage(p PageID, buf []byte) error {
	if c := f.crashPoint(); c != nil {
		switch v, tear := c.onWrite(f.dev.PageSize()); v {
		case crashDead:
			return fmt.Errorf("%w: write page %d", ErrCrashed, p)
		case crashTear:
			// The fatal write lands a prefix of whole sectors over the
			// page's previous contents — the canonical torn page — and
			// then the machine is gone.
			tmp := make([]byte, f.dev.PageSize())
			if err := f.dev.ReadPage(p, tmp); err == nil {
				copy(tmp[:tear], buf[:tear])
				f.dev.WritePage(p, tmp)
			}
			return fmt.Errorf("%w: write page %d torn after %d bytes", ErrCrashed, p, tear)
		}
	}
	if err := f.inject(p, true); err != nil {
		return err
	}
	return f.dev.WritePage(p, buf)
}

// Allocate implements Device.
func (f *Faulty) Allocate(n int) (PageID, error) {
	if c := f.crashPoint(); c != nil && c.dead() {
		return InvalidPage, fmt.Errorf("%w: allocate %d pages", ErrCrashed, n)
	}
	return f.dev.Allocate(n)
}

// NumPages implements Device.
func (f *Faulty) NumPages() int { return f.dev.NumPages() }

// PageSize implements Device.
func (f *Faulty) PageSize() int { return f.dev.PageSize() }

// Head implements Device.
func (f *Faulty) Head() PageID { return f.dev.Head() }

// Stats implements Device.
func (f *Faulty) Stats() Stats { return f.dev.Stats() }

// ResetStats implements Device: it clears the device counters but not
// the fault counters (use SetConfig to re-arm those).
func (f *Faulty) ResetStats() { f.dev.ResetStats() }

// ResetHead implements Device.
func (f *Faulty) ResetHead() { f.dev.ResetHead() }

// Close implements Device.
func (f *Faulty) Close() error { return f.dev.Close() }
