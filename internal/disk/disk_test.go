package disk

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"revelation/internal/trace"
)

func TestSimReadWriteRoundTrip(t *testing.T) {
	d := New(4)
	in := make([]byte, DefaultPageSize)
	for i := range in {
		in[i] = byte(i % 251)
	}
	if err := d.WritePage(2, in); err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	out := make([]byte, DefaultPageSize)
	if err := d.ReadPage(2, out); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("byte %d: got %d want %d", i, out[i], in[i])
		}
	}
}

func TestSimSeekAccounting(t *testing.T) {
	d := New(100)
	buf := make([]byte, DefaultPageSize)
	reads := []PageID{10, 20, 5, 5, 90}
	wantSeek := int64(10 + 10 + 15 + 0 + 85)
	for _, p := range reads {
		if err := d.ReadPage(p, buf); err != nil {
			t.Fatalf("ReadPage(%d): %v", p, err)
		}
	}
	st := d.Stats()
	if st.Reads != int64(len(reads)) {
		t.Errorf("Reads = %d, want %d", st.Reads, len(reads))
	}
	if st.SeekReads != wantSeek {
		t.Errorf("SeekReads = %d, want %d", st.SeekReads, wantSeek)
	}
	if st.MaxSeek != 85 {
		t.Errorf("MaxSeek = %d, want 85", st.MaxSeek)
	}
	if got, want := st.AvgSeekPerRead(), float64(wantSeek)/float64(len(reads)); got != want {
		t.Errorf("AvgSeekPerRead = %v, want %v", got, want)
	}
	if d.Head() != 90 {
		t.Errorf("Head = %d, want 90", d.Head())
	}
}

func TestSimWritesMoveHeadButNotReadSeek(t *testing.T) {
	d := New(100)
	buf := make([]byte, DefaultPageSize)
	if err := d.WritePage(50, buf); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.SeekReads != 0 {
		t.Errorf("SeekReads after write = %d, want 0", st.SeekReads)
	}
	if st.SeekTotal != 50 {
		t.Errorf("SeekTotal after write = %d, want 50", st.SeekTotal)
	}
	if err := d.ReadPage(60, buf); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().SeekReads; got != 10 {
		t.Errorf("SeekReads = %d, want 10 (head moved by write)", got)
	}
}

func TestSimAllocate(t *testing.T) {
	d := New(2)
	first, err := d.Allocate(3)
	if err != nil {
		t.Fatal(err)
	}
	if first != 2 {
		t.Errorf("Allocate returned %d, want 2", first)
	}
	if d.NumPages() != 5 {
		t.Errorf("NumPages = %d, want 5", d.NumPages())
	}
	buf := make([]byte, DefaultPageSize)
	if err := d.ReadPage(4, buf); err != nil {
		t.Errorf("read allocated page: %v", err)
	}
}

func TestSimOutOfRange(t *testing.T) {
	d := New(1)
	buf := make([]byte, DefaultPageSize)
	if err := d.ReadPage(1, buf); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("ReadPage(1) err = %v, want ErrOutOfRange", err)
	}
	if err := d.WritePage(9, buf); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("WritePage(9) err = %v, want ErrOutOfRange", err)
	}
}

func TestSimBadLength(t *testing.T) {
	d := New(1)
	if err := d.ReadPage(0, make([]byte, 10)); !errors.Is(err, ErrBadLength) {
		t.Errorf("short buffer err = %v, want ErrBadLength", err)
	}
}

func TestSimClosed(t *testing.T) {
	d := New(1)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, DefaultPageSize)
	if err := d.ReadPage(0, buf); !errors.Is(err, ErrClosed) {
		t.Errorf("read after close err = %v, want ErrClosed", err)
	}
	if _, err := d.Allocate(1); !errors.Is(err, ErrClosed) {
		t.Errorf("allocate after close err = %v, want ErrClosed", err)
	}
}

func TestSimFaultInjection(t *testing.T) {
	d := New(4)
	boom := errors.New("boom")
	d.SetFault(func(p PageID, write bool) error {
		if p == 2 && !write {
			return boom
		}
		return nil
	})
	buf := make([]byte, DefaultPageSize)
	if err := d.ReadPage(1, buf); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if err := d.ReadPage(2, buf); !errors.Is(err, boom) {
		t.Errorf("fault not injected: %v", err)
	}
	// A failed access must not move the head or count a read.
	if d.Head() != 1 {
		t.Errorf("head moved on failed read: %d", d.Head())
	}
	if d.Stats().Reads != 1 {
		t.Errorf("failed read counted: %d", d.Stats().Reads)
	}
	d.SetFault(nil)
	if err := d.ReadPage(2, buf); err != nil {
		t.Errorf("fault not cleared: %v", err)
	}
}

func TestSimResetStats(t *testing.T) {
	d := New(10)
	buf := make([]byte, DefaultPageSize)
	if err := d.ReadPage(7, buf); err != nil {
		t.Fatal(err)
	}
	d.ResetStats()
	st := d.Stats()
	if st.Reads != 0 || st.SeekTotal != 0 {
		t.Errorf("stats not reset: %+v", st)
	}
	if d.Head() != 7 {
		t.Errorf("ResetStats moved head: %d", d.Head())
	}
}

func TestSimConcurrentAccess(t *testing.T) {
	d := New(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			buf := make([]byte, DefaultPageSize)
			for i := 0; i < 200; i++ {
				p := PageID(rng.Intn(64))
				if rng.Intn(2) == 0 {
					if err := d.ReadPage(p, buf); err != nil {
						t.Errorf("read: %v", err)
						return
					}
				} else {
					if err := d.WritePage(p, buf); err != nil {
						t.Errorf("write: %v", err)
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Wait()
	st := d.Stats()
	if st.Reads+st.Writes != 1600 {
		t.Errorf("accesses = %d, want 1600", st.Reads+st.Writes)
	}
}

// Property: seek distance accounted for a sequence of reads equals the
// sum of absolute head movements, for any sequence.
func TestSeekDistanceProperty(t *testing.T) {
	f := func(seq []uint8) bool {
		d := New(256)
		buf := make([]byte, DefaultPageSize)
		var want int64
		head := int64(0)
		for _, b := range seq {
			p := int64(b)
			if err := d.ReadPage(PageID(p), buf); err != nil {
				return false
			}
			dlt := p - head
			if dlt < 0 {
				dlt = -dlt
			}
			want += dlt
			head = p
		}
		return d.Stats().SeekReads == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFileDeviceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.db")
	d, err := OpenFile(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Allocate(4); err != nil {
		t.Fatal(err)
	}
	in := make([]byte, 512)
	copy(in, []byte("persisted page"))
	if err := d.WritePage(3, in); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and verify persistence.
	d2, err := OpenFile(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.NumPages() != 4 {
		t.Fatalf("NumPages after reopen = %d, want 4", d2.NumPages())
	}
	out := make([]byte, 512)
	if err := d2.ReadPage(3, out); err != nil {
		t.Fatal(err)
	}
	if string(out[:14]) != "persisted page" {
		t.Errorf("page contents lost: %q", out[:14])
	}
	if d2.Stats().Reads != 1 {
		t.Errorf("Reads = %d, want 1", d2.Stats().Reads)
	}
}

func TestFileDeviceTracerReplayAgrees(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traced.db")
	d, err := OpenFile(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Allocate(64); err != nil {
		t.Fatal(err)
	}
	col := trace.NewCollector()
	if !AttachTracer(d, trace.New(col)) {
		t.Fatal("FileDevice did not accept a tracer")
	}
	buf := make([]byte, 512)
	for _, p := range []PageID{5, 60, 12, 12, 33} {
		if err := d.ReadPage(p, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.WritePage(7, buf); err != nil {
		t.Fatal(err)
	}
	AttachTracer(d, nil)
	if err := d.ReadPage(1, buf); err != nil { // after detach: no event
		t.Fatal(err)
	}

	r := trace.ReplayEvents(col.Events())
	st := d.Stats()
	if r.Reads != st.Reads-1 || r.Writes != st.Writes {
		t.Errorf("replay reads/writes %d/%d, want %d/%d", r.Reads, r.Writes, st.Reads-1, st.Writes)
	}
	// The detached read moved the head 7→1 (6 pages) without an event,
	// so the replayed seek totals equal the device's minus that seek.
	if want := st.SeekTotal - 6; r.SeekTotal != want {
		t.Errorf("replay SeekTotal = %d, want %d", r.SeekTotal, want)
	}
	if want := st.SeekReads - 6; r.SeekReads != want {
		t.Errorf("replay SeekReads = %d, want %d", r.SeekReads, want)
	}
}

func TestFileDeviceBadLengthFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.db")
	if err := os.WriteFile(path, make([]byte, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path, 512); err == nil {
		t.Error("OpenFile accepted a non-page-multiple file")
	}
}

func TestFileDeviceSeekAccounting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seek.db")
	d, err := OpenFile(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Allocate(50); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	if err := d.ReadPage(40, buf); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadPage(10, buf); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().SeekReads; got != 70 {
		t.Errorf("SeekReads = %d, want 70", got)
	}
}

func TestServerElevatorOrder(t *testing.T) {
	// Build the server without its drain goroutine, enqueue a full
	// batch, then start draining: the batch must be serviced in SCAN
	// order, so total head movement equals one ascending sweep.
	d := New(1000)
	s := &Server{dev: d, stopped: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	pages := []PageID{500, 100, 900, 300, 700}
	var reqs []*request
	for _, p := range pages {
		r := &request{page: p, buf: make([]byte, DefaultPageSize), done: make(chan error, 1)}
		reqs = append(reqs, r)
		s.queue = append(s.queue, r)
	}
	go s.run()
	for _, r := range reqs {
		if err := <-r.done; err != nil {
			t.Fatalf("server read %d: %v", r.page, err)
		}
	}
	s.Close()
	st := d.Stats()
	if st.Reads != int64(len(pages)) {
		t.Errorf("Reads = %d, want %d", st.Reads, len(pages))
	}
	// Head starts at 0, all requests >= 0: a single ascending sweep
	// to page 900.
	if st.SeekReads != 900 {
		t.Errorf("SeekReads = %d, want 900 (one SCAN sweep)", st.SeekReads)
	}
}

func TestServerSweepSplitsAtHead(t *testing.T) {
	d := New(1000)
	buf := make([]byte, DefaultPageSize)
	if err := d.ReadPage(400, buf); err != nil { // park head at 400
		t.Fatal(err)
	}
	d.ResetStats()
	s := &Server{dev: d, stopped: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	var reqs []*request
	for _, p := range []PageID{600, 200, 500, 300} {
		r := &request{page: p, buf: make([]byte, DefaultPageSize), done: make(chan error, 1)}
		reqs = append(reqs, r)
		s.queue = append(s.queue, r)
	}
	go s.run()
	for _, r := range reqs {
		if err := <-r.done; err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Up: 400->500->600 (200), then down: 600->300->200 (400). Total 600.
	if got := d.Stats().SeekReads; got != 600 {
		t.Errorf("SeekReads = %d, want 600 (up then down sweep)", got)
	}
}

func TestServerBatchWaitAccumulates(t *testing.T) {
	d := New(1000)
	s := NewServer(d)
	defer s.Close()
	s.SetBatchWait(2 * time.Millisecond)
	var wg sync.WaitGroup
	pages := []PageID{900, 100, 500, 300, 700}
	for _, p := range pages {
		wg.Add(1)
		go func(p PageID) {
			defer wg.Done()
			buf := make([]byte, DefaultPageSize)
			if err := s.Read(p, buf); err != nil {
				t.Errorf("read %d: %v", p, err)
			}
		}(p)
	}
	wg.Wait()
	st := d.Stats()
	if st.Reads != int64(len(pages)) {
		t.Fatalf("Reads = %d", st.Reads)
	}
	// With the batching window all five requests should land in one
	// or two sweeps: well under the ~2400 a random order can cost.
	if st.SeekReads > 1700 {
		t.Errorf("SeekReads = %d, batching did not help", st.SeekReads)
	}
}

func TestServerReadAfterClose(t *testing.T) {
	d := New(10)
	s := NewServer(d)
	s.Close()
	if err := s.Read(1, make([]byte, DefaultPageSize)); !errors.Is(err, ErrClosed) {
		t.Errorf("read after close err = %v, want ErrClosed", err)
	}
}

func TestServerManyClients(t *testing.T) {
	d := New(4096)
	s := NewServer(d)
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			buf := make([]byte, DefaultPageSize)
			for i := 0; i < 100; i++ {
				if err := s.Read(PageID(rng.Intn(4096)), buf); err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if got := d.Stats().Reads; got != 1600 {
		t.Errorf("Reads = %d, want 1600", got)
	}
}

func TestStatsString(t *testing.T) {
	// Smoke test the zero-read metric guard.
	var s Stats
	if s.AvgSeekPerRead() != 0 {
		t.Errorf("AvgSeekPerRead on zero stats = %v", s.AvgSeekPerRead())
	}
	_ = fmt.Sprintf("%+v", s)
}
