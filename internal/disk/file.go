package disk

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"revelation/internal/metrics"
	"revelation/internal/qtrace"
	"revelation/internal/trace"
)

// FileDevice is a Device persisted in an ordinary file. It applies the
// same seek accounting as Sim — the simulated head is what the paper's
// metric is about, not the host filesystem — while letting databases
// built by cmd/dbgen survive across processes.
type FileDevice struct {
	mu       sync.Mutex
	f        *os.File
	pageSize int
	numPages int
	head     PageID
	cells    devCells
	tr       *trace.Tracer
	closed   bool
}

// OpenFile opens (or creates) a file-backed device. An existing file
// must have a length that is a multiple of pageSize.
func OpenFile(path string, pageSize int) (*FileDevice, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("disk: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: stat %s: %w", path, err)
	}
	if st.Size()%int64(pageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("disk: %s length %d is not a multiple of page size %d", path, st.Size(), pageSize)
	}
	return &FileDevice{f: f, pageSize: pageSize, numPages: int(st.Size() / int64(pageSize))}, nil
}

func (d *FileDevice) seekTo(p PageID, read bool) int64 {
	var dist int64
	if p >= d.head {
		dist = int64(p - d.head)
	} else {
		dist = int64(d.head - p)
	}
	d.cells.account(dist, read)
	d.head = p
	return dist
}

// SetTracer implements TracerSetter: every subsequent access emits a
// disk event with the pre-access head position and seek distance, the
// same contract Sim honours — so trace replays verify file-backed runs
// identically to simulated ones. Pass nil to disable.
func (d *FileDevice) SetTracer(t *trace.Tracer) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tr = t
}

// RegisterMetrics implements MetricsRegistrar.
func (d *FileDevice) RegisterMetrics(r *metrics.Registry, dev string) {
	d.cells.register(r, dev,
		func() int64 { return int64(d.Head()) },
		func() int64 { return int64(d.NumPages()) })
}

// ReadPage implements Device.
func (d *FileDevice) ReadPage(p PageID, buf []byte) error {
	return d.readPage(p, buf, nil)
}

// ReadPageCtx implements CtxReader: the read is additionally charged
// to the query span in ctx (nil span: identical to ReadPage).
func (d *FileDevice) ReadPageCtx(ctx context.Context, p PageID, buf []byte) error {
	return d.readPage(p, buf, spanFrom(ctx))
}

func (d *FileDevice) readPage(p PageID, buf []byte, sp *qtrace.Span) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if len(buf) != d.pageSize {
		return ErrBadLength
	}
	if int(p) >= d.numPages {
		return fmt.Errorf("%w: read page %d of %d", ErrOutOfRange, p, d.numPages)
	}
	if _, err := d.f.ReadAt(buf, int64(p)*int64(d.pageSize)); err != nil {
		return fmt.Errorf("disk: read page %d: %w", p, err)
	}
	if d.tr != nil {
		start := time.Now()
		prev := d.head
		dist := d.seekTo(p, true)
		d.cells.reads.Inc()
		sp.OnRead(dist)
		d.tr.DiskQ(trace.KindRead, int64(p), int64(prev), dist, sp.QID())
		d.tr.Observe("disk/read", time.Since(start))
		return nil
	}
	dist := d.seekTo(p, true)
	d.cells.reads.Inc()
	sp.OnRead(dist)
	return nil
}

// WritePage implements Device.
func (d *FileDevice) WritePage(p PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if len(buf) != d.pageSize {
		return ErrBadLength
	}
	if int(p) >= d.numPages {
		return fmt.Errorf("%w: write page %d of %d", ErrOutOfRange, p, d.numPages)
	}
	if _, err := d.f.WriteAt(buf, int64(p)*int64(d.pageSize)); err != nil {
		return fmt.Errorf("disk: write page %d: %w", p, err)
	}
	if d.tr != nil {
		start := time.Now()
		prev := d.head
		dist := d.seekTo(p, false)
		d.cells.writes.Inc()
		d.tr.Disk(trace.KindWrite, int64(p), int64(prev), dist)
		d.tr.Observe("disk/write", time.Since(start))
		return nil
	}
	d.seekTo(p, false)
	d.cells.writes.Inc()
	return nil
}

// Allocate implements Device.
func (d *FileDevice) Allocate(n int) (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return InvalidPage, ErrClosed
	}
	first := PageID(d.numPages)
	if err := d.f.Truncate(int64(d.numPages+n) * int64(d.pageSize)); err != nil {
		return InvalidPage, fmt.Errorf("disk: allocate %d pages: %w", n, err)
	}
	d.numPages += n
	return first, nil
}

// NumPages implements Device.
func (d *FileDevice) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.numPages
}

// PageSize implements Device.
func (d *FileDevice) PageSize() int { return d.pageSize }

// Head implements Device.
func (d *FileDevice) Head() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.head
}

// Stats implements Device. The counters live in atomic cells, so this
// is safe to call from a scraper while accesses are in flight.
func (d *FileDevice) Stats() Stats { return d.cells.stats() }

// ResetStats implements Device.
func (d *FileDevice) ResetStats() { d.cells.reset() }

// ResetHead implements Device.
func (d *FileDevice) ResetHead() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.head = 0
}

// Close implements Device.
func (d *FileDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	return d.f.Close()
}
