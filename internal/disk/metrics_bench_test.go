package disk

import (
	"testing"

	"revelation/internal/metrics"
)

// BenchmarkMetricsOverhead prices the metrics instrumentation on the
// device read path. The design claim is "attach, don't wrap": the
// registry observes the same atomic cells the hot path always updates,
// so registering a device must not change its per-read cost at all —
// the two sub-benchmarks should report identical ns/op (numbers in
// EXPERIMENTS.md).
func BenchmarkMetricsOverhead(b *testing.B) {
	run := func(b *testing.B, d *Sim) {
		buf := make([]byte, d.PageSize())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := d.ReadPage(PageID(i&1023), buf); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("read-unregistered", func(b *testing.B) {
		run(b, New(1024))
	})
	b.Run("read-registered", func(b *testing.B) {
		d := New(1024)
		d.RegisterMetrics(metrics.NewRegistry(), "bench")
		run(b, d)
	})
}
