package disk

import "sync"

// SectorSize is the atomic-write granularity the crash model assumes:
// a write interrupted by a crash lands some prefix of whole 512-byte
// sectors, never a partial sector. This matches the classic disk
// contract (and is conservative for modern 4K-native drives).
const SectorSize = 512

// crashVerdict is CrashPoint's decision for one write.
type crashVerdict int

const (
	crashPass crashVerdict = iota // write proceeds normally
	crashTear                     // write lands a sector prefix, then the device dies
	crashDead                     // device is already dead
)

// CrashPoint models a whole-machine crash at a chosen point in the
// global write sequence. One CrashPoint is shared by every Faulty
// wrapper in the system (data device and WAL device alike), so "the
// n-th write" counts across all of them — exactly the ordering a real
// crash would cut.
//
// Armed with after=n and torn=false, the n-th write completes and then
// the device dies. With torn=true, the n-th write itself is interrupted:
// a seeded prefix of whole sectors reaches the medium and the rest of
// the page keeps its previous contents — a torn page. After the crash,
// every read, write, and allocation fails with ErrCrashed until Revive.
//
// With after <= 0 the point never fires and merely counts writes; the
// crash-point sweep uses a disarmed run to learn W, the number of
// write points to crash at.
type CrashPoint struct {
	mu      sync.Mutex
	after   int64 // crash at this write ordinal (1-based); <=0 disarmed
	torn    bool  // tear the fatal write instead of completing it
	seed    int64 // drives the torn-prefix length
	writes  int64 // writes observed so far
	crashed bool
}

// NewCrashPoint arms a crash at the after-th write (1-based). With
// torn, that write is torn at a sector boundary chosen by seed;
// otherwise it completes and the device dies immediately after.
// after <= 0 builds a disarmed, count-only point.
func NewCrashPoint(after int64, torn bool, seed int64) *CrashPoint {
	return &CrashPoint{after: after, torn: torn, seed: seed}
}

// onWrite advances the write clock and decides this write's fate.
// tearBytes is meaningful only for crashTear: how many bytes of the
// page reach the medium (a multiple of SectorSize, possibly zero,
// always less than pageSize).
func (c *CrashPoint) onWrite(pageSize int) (v crashVerdict, tearBytes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return crashDead, 0
	}
	c.writes++
	if c.after <= 0 || c.writes < c.after {
		return crashPass, 0
	}
	c.crashed = true
	if !c.torn {
		// The fatal write completes; everything after it fails.
		return crashPass, 0
	}
	sectors := pageSize / SectorSize
	if sectors < 1 {
		sectors = 1
	}
	// A torn write lands k ∈ [0, sectors) whole sectors: always less
	// than the full page, so the tail keeps its previous contents.
	k := int(mix(c.seed, PageID(c.writes), saltTear) * float64(sectors))
	if k >= sectors {
		k = sectors - 1
	}
	return crashTear, k * SectorSize
}

// dead reports whether the device has crashed (used by reads and
// allocations, which do not advance the write clock).
func (c *CrashPoint) dead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// Crashed reports whether the crash has fired.
func (c *CrashPoint) Crashed() bool { return c.dead() }

// Writes returns the number of writes observed so far (including the
// fatal one).
func (c *CrashPoint) Writes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes
}

// Revive clears the crash and disarms the point, modeling the restart
// after which recovery runs: the device works again and no further
// crash is scheduled.
func (c *CrashPoint) Revive() {
	c.mu.Lock()
	c.crashed = false
	c.after = 0
	c.mu.Unlock()
}
