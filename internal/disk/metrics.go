package disk

import (
	"revelation/internal/metrics"
)

// devCells holds a device's counters as registry-attachable metric
// cells. Every Device implementation in this package updates these on
// its physical-access path and derives Stats() from them, so the
// harness view and a live /metrics scrape read the same accounting.
type devCells struct {
	reads     metrics.Counter
	writes    metrics.Counter
	seekTotal metrics.Counter
	seekReads metrics.Counter
	maxSeek   metrics.Gauge
}

// account records one seek of the given distance.
func (c *devCells) account(dist int64, read bool) {
	c.seekTotal.Add(dist)
	if read {
		c.seekReads.Add(dist)
	}
	c.maxSeek.SetMax(dist)
}

// stats snapshots the cells as the classic Stats struct.
func (c *devCells) stats() Stats {
	return Stats{
		Reads:     c.reads.Value(),
		Writes:    c.writes.Value(),
		SeekTotal: c.seekTotal.Value(),
		SeekReads: c.seekReads.Value(),
		MaxSeek:   c.maxSeek.Value(),
	}
}

// reset zeroes the cells (ResetStats semantics).
func (c *devCells) reset() {
	c.reads.Reset()
	c.writes.Reset()
	c.seekTotal.Reset()
	c.seekReads.Reset()
	c.maxSeek.Reset()
}

// register attaches the cells to r under the asm_disk_* families,
// labeled with the device name. head and size, when non-nil, export the
// live head position and device size as scrape-time gauges.
func (c *devCells) register(r *metrics.Registry, dev string, head, size metrics.GaugeFunc) {
	r.Attach("asm_disk_reads_total", "Physical page reads.", &c.reads, "dev", dev)
	r.Attach("asm_disk_writes_total", "Physical page writes.", &c.writes, "dev", dev)
	r.Attach("asm_disk_seek_pages_total", "Total head movement in pages, reads and writes.", &c.seekTotal, "dev", dev)
	r.Attach("asm_disk_read_seek_pages_total", "Head movement attributable to reads only.", &c.seekReads, "dev", dev)
	r.Attach("asm_disk_max_seek_pages", "Largest single seek observed.", &c.maxSeek, "dev", dev)
	if head != nil {
		r.Attach("asm_disk_head_position", "Current head position in pages.", head, "dev", dev)
	}
	if size != nil {
		r.Attach("asm_disk_size_pages", "Device size in pages.", size, "dev", dev)
	}
}

// MetricsRegistrar is implemented by devices that can export their
// counters into a metrics registry. Wrapper devices forward the call to
// the devices they wrap (with the same label), so registering the top
// of a device stack instruments the whole stack.
type MetricsRegistrar interface {
	RegisterMetrics(r *metrics.Registry, dev string)
}

// RegisterMetrics attaches dev's counters to r under the given device
// label when the device supports it, reporting whether it did.
// Registration is idempotent: attaching again replaces the series.
func RegisterMetrics(d Device, r *metrics.Registry, dev string) bool {
	if m, ok := d.(MetricsRegistrar); ok {
		m.RegisterMetrics(r, dev)
		return true
	}
	return false
}
