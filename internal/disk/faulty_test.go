package disk

import (
	"errors"
	"testing"
	"time"
)

func TestFaultyDisarmedIsTransparent(t *testing.T) {
	inner := New(16)
	f := NewFaulty(inner, FaultConfig{})
	buf := make([]byte, DefaultPageSize)
	for p := 0; p < 16; p++ {
		if err := f.ReadPage(PageID(p), buf); err != nil {
			t.Fatalf("disarmed read %d: %v", p, err)
		}
		if err := f.WritePage(PageID(p), buf); err != nil {
			t.Fatalf("disarmed write %d: %v", p, err)
		}
	}
	if st := f.FaultStats(); st != (FaultStats{}) {
		t.Errorf("disarmed injector counted faults: %+v", st)
	}
	if f.Stats().Reads != 16 {
		t.Errorf("reads not forwarded: %+v", f.Stats())
	}
}

func TestFaultyTransientRecoversAfterN(t *testing.T) {
	inner := New(256)
	f := NewFaulty(inner, FaultConfig{Seed: 7, TransientRate: 0.3, TransientFailures: 2})
	buf := make([]byte, DefaultPageSize)

	faulty, clean := 0, 0
	for p := 0; p < 256; p++ {
		id := PageID(p)
		if !f.TransientlyFaulty(id) {
			clean++
			if err := f.ReadPage(id, buf); err != nil {
				t.Fatalf("clean page %d: %v", p, err)
			}
			continue
		}
		faulty++
		for i := 0; i < 2; i++ {
			err := f.ReadPage(id, buf)
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("page %d failure %d: err = %v, want ErrTransient", p, i, err)
			}
			if !Retryable(err) {
				t.Fatalf("transient error not Retryable: %v", err)
			}
		}
		if err := f.ReadPage(id, buf); err != nil {
			t.Fatalf("page %d after %d failures: %v", p, 2, err)
		}
	}
	if faulty == 0 || clean == 0 {
		t.Fatalf("degenerate injection split: %d faulty, %d clean", faulty, clean)
	}
	// ~30% of 256 pages should be transiently faulty.
	if faulty < 40 || faulty > 120 {
		t.Errorf("transient rate 0.3 marked %d/256 pages", faulty)
	}
	if st := f.FaultStats(); st.Transient != int64(2*faulty) {
		t.Errorf("Transient = %d, want %d", st.Transient, 2*faulty)
	}
}

func TestFaultyPermanentNeverRecovers(t *testing.T) {
	inner := New(256)
	f := NewFaulty(inner, FaultConfig{Seed: 11, PermanentRate: 0.1})
	buf := make([]byte, DefaultPageSize)
	poisoned := 0
	for p := 0; p < 256; p++ {
		id := PageID(p)
		want := f.PermanentlyFaulty(id)
		for i := 0; i < 3; i++ {
			err := f.ReadPage(id, buf)
			if want {
				if !errors.Is(err, ErrPermanent) {
					t.Fatalf("page %d attempt %d: err = %v, want ErrPermanent", p, i, err)
				}
				if Retryable(err) {
					t.Fatalf("permanent error classified retryable: %v", err)
				}
			} else if err != nil {
				t.Fatalf("clean page %d: %v", p, err)
			}
		}
		if want {
			poisoned++
		}
	}
	if poisoned < 10 || poisoned > 50 {
		t.Errorf("permanent rate 0.1 poisoned %d/256 pages", poisoned)
	}
}

func TestFaultyDeterministicAcrossInstances(t *testing.T) {
	cfg := FaultConfig{Seed: 42, TransientRate: 0.2, PermanentRate: 0.05}
	a := NewFaulty(New(128), cfg)
	b := NewFaulty(New(128), cfg)
	for p := 0; p < 128; p++ {
		id := PageID(p)
		if a.PermanentlyFaulty(id) != b.PermanentlyFaulty(id) {
			t.Fatalf("permanent decision diverges at page %d", p)
		}
		if a.TransientlyFaulty(id) != b.TransientlyFaulty(id) {
			t.Fatalf("transient decision diverges at page %d", p)
		}
	}
}

func TestFaultyWritesGated(t *testing.T) {
	inner := New(64)
	f := NewFaulty(inner, FaultConfig{Seed: 3, PermanentRate: 1})
	buf := make([]byte, DefaultPageSize)
	// Writes pass by default even when every read is poisoned.
	if err := f.WritePage(5, buf); err != nil {
		t.Fatalf("gated write faulted: %v", err)
	}
	f.SetConfig(FaultConfig{Seed: 3, PermanentRate: 1, Writes: true})
	if err := f.WritePage(5, buf); !errors.Is(err, ErrPermanent) {
		t.Fatalf("write with Writes=true: err = %v, want ErrPermanent", err)
	}
}

func TestFaultyLatencySpikes(t *testing.T) {
	inner := New(32)
	f := NewFaulty(inner, FaultConfig{Seed: 9, LatencyRate: 1, Latency: time.Millisecond})
	buf := make([]byte, DefaultPageSize)
	start := time.Now()
	if err := f.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < time.Millisecond {
		t.Errorf("latency spike not applied: read took %v", d)
	}
	if st := f.FaultStats(); st.Latency != 1 {
		t.Errorf("Latency = %d, want 1", st.Latency)
	}
}

func TestRetryPolicyBackoffAndDo(t *testing.T) {
	rp := RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Microsecond, MaxBackoff: 4 * time.Microsecond}
	if got := rp.Backoff(0); got != time.Microsecond {
		t.Errorf("Backoff(0) = %v", got)
	}
	if got := rp.Backoff(10); got != 4*time.Microsecond {
		t.Errorf("Backoff(10) = %v, want cap", got)
	}

	// Transient error vanishes after 2 failures: Do must absorb it.
	fails := 2
	retries, err := rp.Do(func() error {
		if fails > 0 {
			fails--
			return ErrTransient
		}
		return nil
	})
	if err != nil || retries != 2 {
		t.Errorf("Do absorbed: retries=%d err=%v", retries, err)
	}

	// Permanent errors are never retried.
	calls := 0
	_, err = rp.Do(func() error { calls++; return ErrPermanent })
	if !errors.Is(err, ErrPermanent) || calls != 1 {
		t.Errorf("Do on permanent: calls=%d err=%v", calls, err)
	}

	// Budget exhaustion surfaces the transient error.
	_, err = rp.Do(func() error { return ErrTransient })
	if !errors.Is(err, ErrTransient) {
		t.Errorf("Do exhausted: err=%v", err)
	}

	// Zero policy: one attempt, no retry.
	var zero RetryPolicy
	calls = 0
	if _, err := zero.Do(func() error { calls++; return ErrTransient }); !errors.Is(err, ErrTransient) || calls != 1 {
		t.Errorf("zero policy: calls=%d err=%v", calls, err)
	}
}

// TestStallFaults: stall injection is deterministic per page, delays
// the access without failing it, and is counted separately from
// latency spikes and error faults.
func TestStallFaults(t *testing.T) {
	dev := New(64)
	f := NewFaulty(dev, FaultConfig{
		Seed:      7,
		StallRate: 0.25,
		Stall:     5 * time.Millisecond,
	})

	// Find one stalled and one clean page; the seeded decision must be
	// stable across calls.
	stalled, clean := PageID(InvalidPage), PageID(InvalidPage)
	for p := PageID(0); int(p) < dev.NumPages(); p++ {
		if f.Stalled(p) {
			stalled = p
		} else {
			clean = p
		}
	}
	if stalled == InvalidPage || clean == InvalidPage {
		t.Fatalf("degenerate stall set: stalled=%v clean=%v", stalled, clean)
	}
	if !f.Stalled(stalled) || f.Stalled(clean) {
		t.Fatal("stall decision is not stable")
	}

	buf := make([]byte, dev.PageSize())
	start := time.Now()
	if err := f.ReadPage(stalled, buf); err != nil {
		t.Fatalf("stalled read failed: %v", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Errorf("stalled read took %v, want >= 5ms", d)
	}
	if err := f.ReadPage(clean, buf); err != nil {
		t.Fatalf("clean read failed: %v", err)
	}
	st := f.FaultStats()
	if st.Stalls != 1 {
		t.Errorf("Stalls = %d, want 1", st.Stalls)
	}
	if st.Latency != 0 || st.Transient != 0 || st.Permanent != 0 {
		t.Errorf("stall leaked into other counters: %+v", st)
	}

	// Writes are exempt unless Writes is set, matching the error paths.
	start = time.Now()
	if err := f.WritePage(stalled, buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	if d := time.Since(start); d >= 5*time.Millisecond {
		t.Errorf("write stalled for %v with Writes unset", d)
	}
	if got := f.FaultStats().Stalls; got != 1 {
		t.Errorf("write bumped Stalls to %d", got)
	}
}

func TestBrownoutDeterministicEpisode(t *testing.T) {
	inner := New(4)
	f := NewFaulty(inner, FaultConfig{BrownoutStart: 4, BrownoutLen: 10, BrownoutRamp: 3})
	buf := make([]byte, DefaultPageSize)

	// Start 4, length 10, ramp 3: accesses 4..6 ramp up (1/4, 2/4,
	// 3/4), 7..10 hold the plateau and refuse, 11..13 ramp back down.
	var failed []int
	for i := 0; i < 20; i++ {
		intensity := f.BrownoutIntensity()
		switch {
		case i < 4 || i >= 14:
			if intensity != 0 {
				t.Fatalf("access %d: intensity = %v outside the episode", i, intensity)
			}
		case i >= 7 && i <= 10:
			if intensity != 1 {
				t.Fatalf("access %d: intensity = %v, want plateau 1", i, intensity)
			}
		default:
			if intensity <= 0 || intensity >= 1 {
				t.Fatalf("access %d: intensity = %v, want a ramp in (0,1)", i, intensity)
			}
		}
		err := f.ReadPage(0, buf)
		if err != nil {
			if !errors.Is(err, ErrTransient) || !Retryable(err) {
				t.Fatalf("access %d: err = %v, want a retryable ErrTransient", i, err)
			}
			failed = append(failed, i)
		}
	}
	want := []int{7, 8, 9, 10}
	if len(failed) != len(want) {
		t.Fatalf("refused accesses = %v, want %v", failed, want)
	}
	for i := range want {
		if failed[i] != want[i] {
			t.Fatalf("refused accesses = %v, want %v", failed, want)
		}
	}
	st := f.FaultStats()
	if st.Brownouts != 4 {
		t.Errorf("Brownouts = %d, want 4", st.Brownouts)
	}
	if st.Transient != 0 || st.Permanent != 0 || st.Stalls != 0 {
		t.Errorf("brownout leaked into other counters: %+v", st)
	}

	// Re-arming resets the access clock: the episode replays identically.
	f.SetConfig(FaultConfig{BrownoutStart: 4, BrownoutLen: 10, BrownoutRamp: 3})
	for i := 0; i < 20; i++ {
		err := f.ReadPage(0, buf)
		refused := i >= 7 && i <= 10
		if refused != (err != nil) {
			t.Fatalf("replayed access %d: err = %v, want refused=%v", i, err, refused)
		}
	}
}

func TestBrownoutLeavesStalledPredicateAlone(t *testing.T) {
	inner := New(256)
	base := FaultConfig{Seed: 11, StallRate: 0.2}
	f := NewFaulty(inner, base)
	before := make([]bool, 256)
	anyStalled := false
	for p := range before {
		before[p] = f.Stalled(PageID(p))
		anyStalled = anyStalled || before[p]
	}
	if !anyStalled {
		t.Fatal("degenerate stall set: no page stalled at rate 0.2")
	}

	bcfg := base
	bcfg.BrownoutStart = 0
	bcfg.BrownoutLen = 1000
	bcfg.BrownoutRamp = 10
	f.SetConfig(bcfg)
	for p := range before {
		if f.Stalled(PageID(p)) != before[p] {
			t.Fatalf("page %d: Stalled changed when the brownout armed", p)
		}
	}
	// The predicate is pure: probing it 256 times must not have
	// advanced the brownout's access clock past the first ramp step.
	if got, want := f.BrownoutIntensity(), 1.0/11.0; got != want {
		t.Errorf("BrownoutIntensity after predicate probes = %v, want %v", got, want)
	}
}

func TestJitterBackoffSeededAndBounded(t *testing.T) {
	rp := RetryPolicy{MaxAttempts: 8, BaseBackoff: time.Millisecond, MaxBackoff: 16 * time.Millisecond}
	a, b, other := NewJitter(42), NewJitter(42), NewJitter(43)
	differs := false
	for i := 0; i < 64; i++ {
		retry := i % 5
		ceiling := rp.Backoff(retry)
		da, db, dc := a.Backoff(rp, retry), b.Backoff(rp, retry), other.Backoff(rp, retry)
		if da != db {
			t.Fatalf("draw %d: same seed diverged: %v vs %v", i, da, db)
		}
		if da <= 0 || da > ceiling {
			t.Fatalf("draw %d: %v outside (0, %v]", i, da, ceiling)
		}
		if da != dc {
			differs = true
		}
	}
	if !differs {
		t.Fatal("seeds 42 and 43 produced identical delay sequences")
	}
	var nj *Jitter
	if got := nj.Backoff(rp, 3); got != rp.Backoff(3) {
		t.Errorf("nil jitter = %v, want the deterministic %v", got, rp.Backoff(3))
	}
}
