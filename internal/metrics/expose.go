package metrics

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// sanitizeName maps an arbitrary string to a valid Prometheus metric
// name: [a-zA-Z_:][a-zA-Z0-9_:]*. Invalid runes become underscores, and
// a leading digit is prefixed.
func sanitizeName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else if r >= '0' && r <= '9' { // leading digit
			b.WriteByte('_')
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// sanitizeLabelName is sanitizeName without the colon (colons are
// reserved for recording rules in label position).
func sanitizeLabelName(s string) string {
	return strings.ReplaceAll(sanitizeName(s), ":", "_")
}

// escapeLabelValue applies the exposition-format escapes: backslash,
// double quote, and newline.
func escapeLabelValue(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes backslash and newline for HELP lines.
func escapeHelp(s string) string {
	return strings.ReplaceAll(strings.ReplaceAll(s, `\`, `\\`), "\n", `\n`)
}

// labelString renders {k="v",...}; extra appends one more pair (the
// histogram "le" label). Empty label sets render as "".
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabelValue(values[i]))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraName, escapeLabelValue(extraValue))
	}
	b.WriteByte('}')
	return b.String()
}

// WriteText renders the registry in Prometheus text exposition format
// (version 0.0.4): families sorted by name, series sorted by label
// values, histogram buckets cumulative in ascending le order with the
// power-of-two upper edges 0, 1, 3, 7, … and a final +Inf. The output
// of a quiescent registry is deterministic byte-for-byte, which is what
// the exposition golden test pins.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	fams := r.sortedFamilies()
	// Collect rows under the lock (cells are atomics; GaugeFuncs must
	// not call back into the registry), then write outside it.
	type row struct{ text string }
	var rows []row
	for _, f := range fams {
		var b strings.Builder
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, c := range f.sortedChildren() {
			switch cell := c.cell.(type) {
			case *Histogram:
				v := cell.View()
				hi := 0
				for i, n := range v.Buckets {
					if n > 0 {
						hi = i
					}
				}
				var cum int64
				for i := 0; i <= hi; i++ {
					cum += v.Buckets[i]
					// Bucket i holds values with bitlen == i, so its
					// inclusive upper edge is 2^i - 1.
					le := strconv.FormatInt(int64(1)<<uint(i)-1, 10)
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
						labelString(f.labelNames, c.labelValues, "le", le), cum)
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
					labelString(f.labelNames, c.labelValues, "le", "+Inf"), v.Count)
				fmt.Fprintf(&b, "%s_sum%s %d\n", f.name,
					labelString(f.labelNames, c.labelValues, "", ""), v.Sum)
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name,
					labelString(f.labelNames, c.labelValues, "", ""), v.Count)
			default:
				fmt.Fprintf(&b, "%s%s %d\n", f.name,
					labelString(f.labelNames, c.labelValues, "", ""), cellValue(cell))
			}
		}
		rows = append(rows, row{b.String()})
	}
	r.mu.Unlock()
	for _, row := range rows {
		if _, err := bw.WriteString(row.text); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the registry as a Prometheus
// scrape target — the GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
