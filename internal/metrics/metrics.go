// Package metrics is the live-observability substrate of the
// reproduction: a dependency-free registry of atomic counters, gauges,
// and power-of-two histograms with labeled families, Prometheus
// text-format exposition, and snapshot/delta arithmetic.
//
// Where package trace answers "why did this run cost what it did" after
// the fact (an event stream replayed offline), this package answers
// "what is the system doing right now": every layer keeps its counters
// in registry-attachable cells that a scrape reads while the run is in
// flight. The two accountings — plus the harness's own Stats() structs
// — are reconciled by the three-way agreement tests; see DESIGN.md §9.
//
// Design rules:
//
//   - The package imports only the standard library, so every layer can
//     depend on it without cycles.
//   - The hot path is allocation-free: updating a cell is one atomic
//     RMW, whether or not the cell is attached to a registry. Attaching
//     never wraps or copies a cell, so "metrics enabled" costs exactly
//     what "metrics disabled" costs at the instrumentation point.
//   - Histograms use the same power-of-two bucketing as trace.Hist
//     (bucket 0 holds 0, bucket i holds [2^(i-1), 2^i)), so live and
//     replayed distributions are directly comparable.
package metrics

import (
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing cell. The zero value is ready
// to use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is a caller bug; it is not checked on the hot
// path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset zeroes the counter. It exists for the cold-start semantics of
// Device.ResetStats and for tests; a scraped counter should normally
// never reset.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is a cell that can go up and down. The zero value is ready to
// use; all methods are safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to n if n is larger — the high-water-mark
// update (peak pins, peak window pages).
func (g *Gauge) SetMax(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Reset zeroes the gauge.
func (g *Gauge) Reset() { g.v.Store(0) }

// GaugeFunc is a gauge whose value is computed at scrape time — queue
// depths, head positions, pool occupancy. The function must be safe to
// call concurrently with the system it observes.
type GaugeFunc func() int64

// histBuckets matches trace.Hist: bucket i holds values v with
// bitlen(v) == i, enough for any int64.
const histBuckets = 64

// Histogram is a power-of-two histogram cell with atomic buckets. The
// zero value is ready to use; all methods are safe for concurrent use.
//
// A concurrent snapshot (HistView, Snapshot, exposition) is not a
// consistent cut — counts may be mid-update — but every sample lands
// exactly once, so at quiescence the view is exact.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     Gauge
}

// bucketOf maps a sample to its bucket index (identical to trace.Hist).
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one sample; negative samples clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	h.max.SetMax(v)
}

// HistView is a point-in-time copy of a histogram. Its layout matches
// trace.Hist so live and replayed distributions can be compared (and
// rendered) with the same tooling.
type HistView struct {
	Buckets [histBuckets]int64
	Count   int64
	Sum     int64
	Max     int64
}

// View copies the histogram.
func (h *Histogram) View() HistView {
	var v HistView
	for i := range h.buckets {
		v.Buckets[i] = h.buckets[i].Load()
	}
	v.Count = h.count.Load()
	v.Sum = h.sum.Load()
	v.Max = h.max.Value()
	return v
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Reset()
}
