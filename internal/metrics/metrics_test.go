package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Errorf("counter after reset = %d, want 0", got)
	}

	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
	g.SetMax(2)
	if got := g.Value(); got != 4 {
		t.Errorf("SetMax lowered gauge to %d", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Errorf("SetMax = %d, want 9", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1023, -5} {
		h.Observe(v)
	}
	v := h.View()
	if v.Count != 9 {
		t.Errorf("count = %d, want 9", v.Count)
	}
	if v.Sum != 0+1+2+3+4+7+8+1023 {
		t.Errorf("sum = %d", v.Sum)
	}
	if v.Max != 1023 {
		t.Errorf("max = %d, want 1023", v.Max)
	}
	// Bucket i holds bitlen(v) == i: 0 and -5 → 0; 1 → 1; 2,3 → 2;
	// 4..7 → 3; 8 → 4; 1023 → 10.
	want := map[int]int64{0: 2, 1: 1, 2: 2, 3: 2, 4: 1, 10: 1}
	for i, n := range v.Buckets {
		if n != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", "policy", "elevator")
	b := r.Counter("x_total", "x", "policy", "elevator")
	if a != b {
		t.Error("same name+labels returned distinct cells")
	}
	c := r.Counter("x_total", "x", "policy", "depth-first")
	if a == c {
		t.Error("distinct labels shared a cell")
	}
	a.Add(2)
	c.Inc()
	s := r.Snapshot()
	if got := s.Value("x_total", "policy", "elevator"); got != 2 {
		t.Errorf("elevator = %d, want 2", got)
	}
	if got := s.Sum("x_total"); got != 3 {
		t.Errorf("sum = %d, want 3", got)
	}
}

func TestRegistryAttachReplaces(t *testing.T) {
	r := NewRegistry()
	first := &Counter{}
	first.Add(10)
	r.Attach("y_total", "y", first, "dev", "0")
	second := &Counter{}
	second.Add(3)
	r.Attach("y_total", "y", second, "dev", "0")
	if got := r.Snapshot().Value("y_total", "dev", "0"); got != 3 {
		t.Errorf("after replace = %d, want 3", got)
	}
}

func TestNilRegistryIsDisabled(t *testing.T) {
	var r *Registry
	c := r.Counter("z_total", "z")
	c.Inc() // must not panic
	r.Attach("z_total", "z", &Counter{})
	if s := r.Snapshot(); len(s) != 0 {
		t.Errorf("nil registry snapshot has %d samples", len(s))
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("nil registry exposition: %q, %v", sb.String(), err)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reads_total", "reads")
	c.Add(5)
	before := r.Snapshot()
	c.Add(7)
	d := r.Snapshot().Delta(before)
	if got := d.Value("reads_total"); got != 7 {
		t.Errorf("delta = %d, want 7", got)
	}
}

// TestConcurrentScrape exercises the documented contract under -race:
// cells updated from many goroutines while snapshots and expositions
// run concurrently.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c", "worker", "w")
	h := r.Histogram("h_pages", "h")
	g := r.Gauge("g_depth", "g")
	r.Attach("f_now", "f", GaugeFunc(func() int64 { return g.Value() }))
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(j))
			}
		}()
	}
	for i := 0; i < 20; i++ {
		var sb strings.Builder
		if err := r.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		_ = r.Snapshot()
	}
	wg.Wait()
	if got := c.Value(); got != 4000 {
		t.Errorf("counter = %d, want 4000", got)
	}
	if got := h.Count(); got != 4000 {
		t.Errorf("hist count = %d, want 4000", got)
	}
}
