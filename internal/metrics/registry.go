package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind classifies a family for exposition.
type Kind int

// Family kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// child is one labeled time series of a family.
type child struct {
	labelValues []string
	cell        any // *Counter, *Gauge, GaugeFunc, or *Histogram
}

// family is a named group of same-kind cells distinguished by label
// values.
type family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string
	children   map[string]*child // keyed by joined label values
}

// Registry holds metric families and hands out (or attaches) their
// cells. The zero value is not usable; call NewRegistry. A nil
// *Registry is accepted by every method as "metrics disabled": getters
// return free-floating cells, so call sites need no guards.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// splitPairs validates alternating name/value label pairs.
func splitPairs(labelPairs []string) (names, values []string) {
	if len(labelPairs)%2 != 0 {
		panic(fmt.Sprintf("metrics: odd label pairs %q", labelPairs))
	}
	for i := 0; i < len(labelPairs); i += 2 {
		names = append(names, sanitizeLabelName(labelPairs[i]))
		values = append(values, labelPairs[i+1])
	}
	return names, values
}

// familyFor returns the family under the sanitized name, creating it on
// first use. Kind or label-name disagreement across uses of one name is
// a programming error and panics.
func (r *Registry) familyFor(name, help string, kind Kind, labelNames []string) *family {
	sname := sanitizeName(name)
	f, ok := r.families[sname]
	if !ok {
		f = &family{
			name:       sname,
			help:       help,
			kind:       kind,
			labelNames: labelNames,
			children:   map[string]*child{},
		}
		r.families[sname] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", sname, f.kind, kind))
	}
	if strings.Join(f.labelNames, ",") != strings.Join(labelNames, ",") {
		panic(fmt.Sprintf("metrics: %s registered with labels %v, requested with %v", sname, f.labelNames, labelNames))
	}
	return f
}

// get returns the cell for the label values, creating it with mk when
// absent.
func (r *Registry) get(name, help string, kind Kind, labelPairs []string, mk func() any) any {
	names, values := splitPairs(labelPairs)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, kind, names)
	key := strings.Join(values, "\x00")
	c, ok := f.children[key]
	if !ok {
		c = &child{labelValues: values, cell: mk()}
		f.children[key] = c
	}
	return c.cell
}

// Counter returns the counter cell registered under name with the given
// alternating label name/value pairs, creating the family and the cell
// on first use. Repeated calls with the same name and labels return the
// same cell, so concurrent writers share one accounting.
func (r *Registry) Counter(name, help string, labelPairs ...string) *Counter {
	if r == nil {
		return &Counter{}
	}
	c, ok := r.get(name, help, KindCounter, labelPairs, func() any { return &Counter{} }).(*Counter)
	if !ok {
		panic(fmt.Sprintf("metrics: %s is not a counter", name))
	}
	return c
}

// Gauge is the gauge analogue of Counter.
func (r *Registry) Gauge(name, help string, labelPairs ...string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	g, ok := r.get(name, help, KindGauge, labelPairs, func() any { return &Gauge{} }).(*Gauge)
	if !ok {
		panic(fmt.Sprintf("metrics: %s is not a gauge", name))
	}
	return g
}

// Histogram is the histogram analogue of Counter.
func (r *Registry) Histogram(name, help string, labelPairs ...string) *Histogram {
	if r == nil {
		return &Histogram{}
	}
	h, ok := r.get(name, help, KindHistogram, labelPairs, func() any { return &Histogram{} }).(*Histogram)
	if !ok {
		panic(fmt.Sprintf("metrics: %s is not a histogram", name))
	}
	return h
}

// Attach registers an existing cell — a *Counter, *Gauge, GaugeFunc, or
// *Histogram — under name with the given label pairs. This is how a
// layer that owns its counters (the disk device, the buffer pool)
// exports them without indirection: the registry holds the same cell
// the hot path updates. Attaching over an existing series replaces it,
// so re-instrumenting a cached component is idempotent. A nil registry
// ignores the attach.
func (r *Registry) Attach(name, help string, cell any, labelPairs ...string) {
	if r == nil {
		return
	}
	var kind Kind
	switch cell.(type) {
	case *Counter:
		kind = KindCounter
	case *Gauge, GaugeFunc:
		kind = KindGauge
	case *Histogram:
		kind = KindHistogram
	default:
		panic(fmt.Sprintf("metrics: cannot attach %T", cell))
	}
	names, values := splitPairs(labelPairs)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, kind, names)
	f.children[strings.Join(values, "\x00")] = &child{labelValues: values, cell: cell}
}

// sortedFamilies snapshots the family list in name order, and each
// family's children in label-value order, for deterministic exposition.
// Caller must hold r.mu.
func (r *Registry) sortedFamilies() []*family {
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedChildren returns the family's children in label-value order.
func (f *family) sortedChildren() []*child {
	kids := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		kids = append(kids, c)
	}
	sort.Slice(kids, func(i, j int) bool {
		return strings.Join(kids[i].labelValues, "\x00") < strings.Join(kids[j].labelValues, "\x00")
	})
	return kids
}

// cellValue reads the scalar value of a counter/gauge cell.
func cellValue(cell any) int64 {
	switch v := cell.(type) {
	case *Counter:
		return v.Value()
	case *Gauge:
		return v.Value()
	case GaugeFunc:
		return v()
	default:
		return 0
	}
}
