package metrics

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// buildExpositionRegistry constructs a registry exercising every corner
// of the text format: name sanitization, label value escaping,
// multi-series families in sorted order, gauge functions, and histogram
// bucket cumulation.
func buildExpositionRegistry() *Registry {
	r := NewRegistry()
	// Name needing sanitization: slashes and a leading digit.
	r.Counter("1disk/read.count", "reads with an awkward source name").Add(3)
	// Labeled counter family, insertion order deliberately unsorted.
	r.Counter("asm_disk_reads_total", "physical page reads", "dev", "1").Add(20)
	r.Counter("asm_disk_reads_total", "physical page reads", "dev", "0").Add(10)
	// Label value needing every escape.
	r.Gauge("asm_buffer_pinned_frames", "live pinned frames", "pool",
		"we\"ird\\pool\nname").Set(4)
	// Gauge function.
	r.Attach("asm_disk_head_position", "head position in pages",
		GaugeFunc(func() int64 { return 42 }), "dev", "0")
	// Histogram: samples 0, 1, 2, 3, 9 land in buckets 0, 1, 2, 2, 4 —
	// the exposition must cumulate 1, 2, 4, 4, 5 across le 0,1,3,7,15.
	h := r.Histogram("asm_disk_seek_pages", "seek distance per access")
	for _, v := range []int64{0, 1, 2, 3, 9} {
		h.Observe(v)
	}
	// Empty histogram: only the +Inf bucket, sum and count.
	r.Histogram("asm_empty_latency_ns", "no samples yet")
	return r
}

// TestExpositionGolden pins the Prometheus text format byte-for-byte:
// HELP/TYPE lines, family ordering, label escaping, and cumulative
// histogram buckets. Refresh with:
// go test ./internal/metrics -run Golden -update
func TestExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildExpositionRegistry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("exposition drifted from %s (re-run with -update if intended)\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

// TestExpositionDeterministic guards the golden test's premise.
func TestExpositionDeterministic(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		if err := buildExpositionRegistry().WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := render(), render(); !bytes.Equal(a, b) {
		t.Error("identical registries rendered different text")
	}
}
