package metrics

import "strings"

// Snapshot is a point-in-time reading of every scalar sample in a
// registry, keyed exactly as the exposition renders them:
// name{k="v",...} for counters and gauges, plus name_count and name_sum
// for histograms (buckets are omitted — deltas over buckets belong to
// offline trace analysis).
//
// Snapshots exist so the bench harness can report per-run deltas
// without cold-resetting live counters: snapshot before, snapshot
// after, Delta. A counter that is never reset stays meaningful to a
// concurrent scraper for the whole lifetime of the process.
type Snapshot map[string]int64

// sampleKey builds the canonical key for a series.
func sampleKey(name string, labelNames, labelValues []string) string {
	return name + labelString(labelNames, labelValues, "", "")
}

// Snapshot reads every sample. A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		for _, c := range f.children {
			switch cell := c.cell.(type) {
			case *Histogram:
				s[sampleKey(f.name+"_count", f.labelNames, c.labelValues)] = cell.Count()
				s[sampleKey(f.name+"_sum", f.labelNames, c.labelValues)] = cell.Sum()
			default:
				s[sampleKey(f.name, f.labelNames, c.labelValues)] = cellValue(c.cell)
			}
		}
	}
	return s
}

// Delta returns s - prev, sample by sample, over the keys present in s
// (a key absent from prev counts from zero). Deltas are exact for
// counters and histogram counts; a delta over a gauge is a change in
// level, meaningful only when the caller knows the gauge is monotone
// over the interval.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := make(Snapshot, len(s))
	for k, v := range s {
		d[k] = v - prev[k]
	}
	return d
}

// Value looks up the sample for name and the given alternating label
// name/value pairs, applying the same name sanitization as
// registration. Missing samples read as zero.
func (s Snapshot) Value(name string, labelPairs ...string) int64 {
	names, values := splitPairs(labelPairs)
	return s[sampleKey(sanitizeName(name), names, values)]
}

// Sum adds every sample whose name part (before any '{') equals the
// sanitized name, aggregating a family across its label sets — e.g. the
// total reads over all devices.
func (s Snapshot) Sum(name string) int64 {
	sname := sanitizeName(name)
	var total int64
	for k, v := range s {
		base, _, _ := strings.Cut(k, "{")
		if base == sname {
			total += v
		}
	}
	return total
}
