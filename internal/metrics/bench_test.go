package metrics

import "testing"

// BenchmarkMetricsOverhead prices one instrumentation point: a cell
// update is a single atomic RMW whether or not the cell is attached to
// a registry, which is the package's whole overhead story (numbers in
// EXPERIMENTS.md). The attached variants must not be measurably slower
// than the detached ones.
func BenchmarkMetricsOverhead(b *testing.B) {
	b.Run("counter-detached", func(b *testing.B) {
		var c Counter
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("counter-registered", func(b *testing.B) {
		c := NewRegistry().Counter("bench_total", "bench", "dev", "0")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("gauge-set", func(b *testing.B) {
		var g Gauge
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Set(int64(i))
		}
	})
	b.Run("gauge-setmax", func(b *testing.B) {
		var g Gauge
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.SetMax(int64(i))
		}
	})
	b.Run("histogram-observe", func(b *testing.B) {
		var h Histogram
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(int64(i & 1023))
		}
	})
}
