package volcano

import (
	"fmt"
	"sync"

	"revelation/internal/metrics"
)

// Exchange is Volcano's parallelism operator: it encapsulates
// partitioned execution behind the ordinary iterator interface, so any
// plan fragment can be parallelized "without changing its code"
// (Graefe, SIGMOD 1990; cited as [31] in the paper). NewExchange takes
// a fragment factory; Open launches one producer goroutine per
// partition, each draining its own fragment instance into a shared
// queue that Next consumes.
//
// Output order across partitions is nondeterministic, as with any
// exchange.
type Exchange struct {
	Degree  int
	Factory func(part int) (Iterator, error)
	// QueueLen bounds the flow-control queue (default 64).
	QueueLen int

	ch     chan exchItem
	cancel chan struct{}
	wg     sync.WaitGroup
	open   bool
	closed bool

	// depth and producers are maintained unconditionally so a metrics
	// scraper never reads the channel fields (which Open replaces —
	// len(e.ch) from another goroutine would race).
	depth     metrics.Gauge // items queued between producers and Next
	producers metrics.Gauge // producer goroutines currently running
}

type exchItem struct {
	item Item
	err  error
}

// RegisterMetrics exports the exchange's live queue depth, producer
// count, and degree to r under the given exchange label.
func (e *Exchange) RegisterMetrics(r *metrics.Registry, name string) {
	r.Attach("asm_exchange_queue_depth", "Items queued between producers and the consumer.",
		&e.depth, "exchange", name)
	r.Attach("asm_exchange_producers", "Producer goroutines currently running.",
		&e.producers, "exchange", name)
	r.Attach("asm_exchange_degree", "Configured degree of parallelism.",
		metrics.GaugeFunc(func() int64 { return int64(e.Degree) }), "exchange", name)
}

// NewExchange builds an exchange of the given degree over the fragment
// factory.
func NewExchange(degree int, factory func(part int) (Iterator, error)) *Exchange {
	if degree < 1 {
		degree = 1
	}
	return &Exchange{Degree: degree, Factory: factory}
}

// Open implements Iterator: starts the producer goroutines.
func (e *Exchange) Open() error {
	qlen := e.QueueLen
	if qlen <= 0 {
		qlen = 64
	}
	e.ch = make(chan exchItem, qlen)
	e.cancel = make(chan struct{})
	e.closed = false
	for part := 0; part < e.Degree; part++ {
		e.wg.Add(1)
		go e.produce(part)
	}
	go func() {
		e.wg.Wait()
		close(e.ch)
	}()
	e.open = true
	return nil
}

func (e *Exchange) produce(part int) {
	e.producers.Add(1)
	defer e.producers.Add(-1)
	defer e.wg.Done()
	it, err := e.Factory(part)
	if err != nil {
		e.send(exchItem{err: fmt.Errorf("volcano: exchange partition %d: %w", part, err)})
		return
	}
	if err := it.Open(); err != nil {
		e.send(exchItem{err: fmt.Errorf("volcano: exchange partition %d open: %w", part, err)})
		return
	}
	defer it.Close()
	for {
		item, err := it.Next()
		if err == Done {
			return
		}
		if err != nil {
			e.send(exchItem{err: err})
			return
		}
		if !e.send(exchItem{item: item}) {
			return
		}
	}
}

// send delivers to the consumer unless the exchange was cancelled.
func (e *Exchange) send(x exchItem) bool {
	select {
	case e.ch <- x:
		e.depth.Add(1)
		return true
	case <-e.cancel:
		return false
	}
}

// Next implements Iterator.
func (e *Exchange) Next() (Item, error) {
	if !e.open {
		return nil, ErrNotOpen
	}
	x, ok := <-e.ch
	if !ok {
		return nil, Done
	}
	e.depth.Add(-1)
	if x.err != nil {
		return nil, x.err
	}
	return x.item, nil
}

// Close implements Iterator: cancels producers and waits for them.
func (e *Exchange) Close() error {
	if !e.open || e.closed {
		e.open = false
		return nil
	}
	e.closed = true
	e.open = false
	close(e.cancel)
	// Drain until producers exit so none block on send.
	for range e.ch {
		e.depth.Add(-1)
	}
	return nil
}

// PartitionSlice splits items round-robin into n buckets; the standard
// way to feed an Exchange's fragments.
func PartitionSlice(items []Item, n int) [][]Item {
	if n < 1 {
		n = 1
	}
	out := make([][]Item, n)
	for i, item := range items {
		out[i%n] = append(out[i%n], item)
	}
	return out
}
