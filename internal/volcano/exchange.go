package volcano

import (
	"context"
	"fmt"
	"sync"

	"revelation/internal/metrics"
)

// Exchange is Volcano's parallelism operator: it encapsulates
// partitioned execution behind the ordinary iterator interface, so any
// plan fragment can be parallelized "without changing its code"
// (Graefe, SIGMOD 1990; cited as [31] in the paper). NewExchange takes
// a fragment factory; Open launches one producer goroutine per
// partition, each draining its own fragment instance into a shared
// queue that Next consumes.
//
// Output order across partitions is nondeterministic, as with any
// exchange.
type Exchange struct {
	Degree  int
	Factory func(part int) (Iterator, error)
	// QueueLen bounds the flow-control queue (default 64).
	QueueLen int

	// ctx, when bound (see Bind), drives producer shutdown: producers
	// select on ctx.Done as well as the exchange's own cancel channel,
	// so a cancelled query drains its goroutines without waiting for
	// the consumer to call Close. Bind before Open.
	ctx context.Context

	ch     chan exchItem
	cancel chan struct{}
	wg     sync.WaitGroup
	open   bool
	closed bool

	// depth and producers are maintained unconditionally so a metrics
	// scraper never reads the channel fields (which Open replaces —
	// len(e.ch) from another goroutine would race).
	depth     metrics.Gauge // items queued between producers and Next
	producers metrics.Gauge // producer goroutines currently running
}

type exchItem struct {
	item Item
	err  error
}

// RegisterMetrics exports the exchange's live queue depth, producer
// count, and degree to r under the given exchange label.
func (e *Exchange) RegisterMetrics(r *metrics.Registry, name string) {
	r.Attach("asm_exchange_queue_depth", "Items queued between producers and the consumer.",
		&e.depth, "exchange", name)
	r.Attach("asm_exchange_producers", "Producer goroutines currently running.",
		&e.producers, "exchange", name)
	r.Attach("asm_exchange_degree", "Configured degree of parallelism.",
		metrics.GaugeFunc(func() int64 { return int64(e.Degree) }), "exchange", name)
}

// NewExchange builds an exchange of the given degree over the fragment
// factory.
func NewExchange(degree int, factory func(part int) (Iterator, error)) *Exchange {
	if degree < 1 {
		degree = 1
	}
	return &Exchange{Degree: degree, Factory: factory}
}

// Open implements Iterator: starts the producer goroutines.
func (e *Exchange) Open() error {
	qlen := e.QueueLen
	if qlen <= 0 {
		qlen = 64
	}
	e.ch = make(chan exchItem, qlen)
	e.cancel = make(chan struct{})
	e.closed = false
	for part := 0; part < e.Degree; part++ {
		e.wg.Add(1)
		go e.produce(part)
	}
	go func() {
		e.wg.Wait()
		close(e.ch)
	}()
	e.open = true
	return nil
}

// BindContext implements ContextBinder. Producers launched by a later
// Open select on ctx.Done, so cancellation alone — without any Close
// ordering — drains the exchange's goroutines.
func (e *Exchange) BindContext(ctx context.Context) { e.ctx = ctx }

// ctxDone returns the bound context's done channel, or nil (which
// never fires in a select) when unbound.
func (e *Exchange) ctxDone() <-chan struct{} {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Done()
}

func (e *Exchange) produce(part int) {
	e.producers.Add(1)
	defer e.producers.Add(-1)
	defer e.wg.Done()
	it, err := e.Factory(part)
	if err != nil {
		e.send(exchItem{err: fmt.Errorf("volcano: exchange partition %d: %w", part, err)})
		return
	}
	// Fragments are created per Open, after any Bind walk over the
	// plan, so the query context is threaded into them here.
	if e.ctx != nil {
		if cb, ok := it.(ContextBinder); ok {
			cb.BindContext(e.ctx)
		}
	}
	if err := it.Open(); err != nil {
		e.send(exchItem{err: fmt.Errorf("volcano: exchange partition %d open: %w", part, err)})
		return
	}
	defer it.Close()
	for {
		if e.ctx != nil && e.ctx.Err() != nil {
			// Cancellation-driven exit: do not produce past a dead
			// query even if the queue has room.
			return
		}
		item, err := it.Next()
		if err == Done {
			return
		}
		if err != nil {
			e.send(exchItem{err: err})
			return
		}
		if !e.send(exchItem{item: item}) {
			return
		}
	}
}

// send delivers to the consumer unless the exchange was cancelled —
// by Close (the consumer walked away) or by the bound query context.
func (e *Exchange) send(x exchItem) bool {
	select {
	case e.ch <- x:
		e.depth.Add(1)
		return true
	case <-e.cancel:
		return false
	case <-e.ctxDone():
		return false
	}
}

// Next implements Iterator. With a bound context, a cancelled query
// returns the context's error rather than Done — a dead query must not
// look like a cleanly exhausted stream.
func (e *Exchange) Next() (Item, error) {
	if !e.open {
		return nil, ErrNotOpen
	}
	if e.ctx != nil {
		if err := e.ctx.Err(); err != nil {
			return nil, err
		}
		select {
		case x, ok := <-e.ch:
			return e.deliver(x, ok)
		case <-e.ctx.Done():
			return nil, e.ctx.Err()
		}
	}
	x, ok := <-e.ch
	return e.deliver(x, ok)
}

func (e *Exchange) deliver(x exchItem, ok bool) (Item, error) {
	if !ok {
		return nil, Done
	}
	e.depth.Add(-1)
	if x.err != nil {
		return nil, x.err
	}
	return x.item, nil
}

// Close implements Iterator: cancels producers and waits for them.
func (e *Exchange) Close() error {
	if !e.open || e.closed {
		e.open = false
		return nil
	}
	e.closed = true
	e.open = false
	close(e.cancel)
	// Drain until producers exit so none block on send.
	for range e.ch {
		e.depth.Add(-1)
	}
	return nil
}

// PartitionSlice splits items round-robin into n buckets; the standard
// way to feed an Exchange's fragments.
func PartitionSlice(items []Item, n int) [][]Item {
	if n < 1 {
		n = 1
	}
	out := make([][]Item, n)
	for i, item := range items {
		out[i%n] = append(out[i%n], item)
	}
	return out
}
