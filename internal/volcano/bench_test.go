package volcano

import (
	"testing"

	"revelation/internal/buffer"
	"revelation/internal/disk"
	"revelation/internal/expr"
	"revelation/internal/heap"
	"revelation/internal/object"
)

func BenchmarkHeapScan(b *testing.B) {
	d := disk.New(0)
	pool := buffer.New(d, 4096, buffer.LRU)
	s := benchObjectStore(b, pool, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := Count(NewHeapScan(s.File, nil))
		if err != nil || n != 10000 {
			b.Fatalf("scan = (%d, %v)", n, err)
		}
	}
}

func BenchmarkHeapScanWithPredicate(b *testing.B) {
	d := disk.New(0)
	pool := buffer.New(d, 4096, buffer.LRU)
	s := benchObjectStore(b, pool, 10000)
	pred := expr.IntCmp{Field: 1, Op: expr.EQ, Value: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Count(NewHeapScan(s.File, pred)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashJoinBuildProbe(b *testing.B) {
	const n = 10000
	left := make([]Item, n)
	right := make([]Item, n)
	for i := 0; i < n; i++ {
		left[i] = i
		right[i] = i
	}
	key := func(it Item) (any, error) { return it.(int), nil }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := NewHashJoin(NewSlice(left), NewSlice(right), key, key)
		cnt, err := Count(j)
		if err != nil || cnt != n {
			b.Fatalf("join = (%d, %v)", cnt, err)
		}
	}
}

func BenchmarkExternalSort10k(b *testing.B) {
	const n = 10000
	vals := make([]Item, n)
	for i := range vals {
		vals[i] = (i * 7919) % n
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := disk.New(0)
		pool := buffer.New(d, 64, buffer.LRU)
		es := NewExternalSort(NewSlice(vals),
			func(a, b Item) bool { return a.(int) < b.(int) },
			intCodec{}, pool, 512)
		cnt, err := Count(es)
		if err != nil || cnt != n {
			b.Fatalf("sort = (%d, %v)", cnt, err)
		}
	}
}

func BenchmarkExchangeThroughput(b *testing.B) {
	const n = 20000
	items := make([]Item, n)
	for i := range items {
		items[i] = i
	}
	parts := PartitionSlice(items, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewExchange(4, func(part int) (Iterator, error) {
			return NewSlice(parts[part]), nil
		})
		cnt, err := Count(e)
		if err != nil || cnt != n {
			b.Fatalf("exchange = (%d, %v)", cnt, err)
		}
	}
}

// benchObjectStore builds a store of n chained objects for benchmarks.
func benchObjectStore(b *testing.B, pool *buffer.Pool, n int) *object.Store {
	b.Helper()
	f, err := heap.Create(pool, n/9+2)
	if err != nil {
		b.Fatal(err)
	}
	s := object.NewStore(f, object.NewMapLocator(), object.NewCatalog())
	for i := 1; i <= n; i++ {
		o := &object.Object{
			OID:   object.OID(i),
			Class: 1,
			Ints:  []int32{int32(i), int32(i % 10), 0, 0},
			Refs:  make([]object.OID, 8),
		}
		if _, err := s.Put(o); err != nil {
			b.Fatal(err)
		}
	}
	return s
}
