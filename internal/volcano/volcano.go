// Package volcano implements the set processor of the reproduction: a
// demand-driven dataflow query engine in the style of the Volcano
// system the paper builds on (Section 3). Every operator provides the
// uniform iterator interface — open, next, close — and query plans are
// trees of operators pulling items from their inputs.
//
// The assembly operator (package assembly) is one more physical
// operator in this algebra; this package supplies the rest: scans,
// selection, projection, sorting (in-memory and external), joins
// (including the pointer-based joins the paper compares against),
// aggregation, and the exchange operator that encapsulates parallelism
// exactly as Volcano does.
package volcano

import (
	"errors"
	"fmt"
)

// Item is the unit of dataflow: a storage object, an assembled complex
// object, an OID, or any row-like value an operator produces.
type Item = any

// Done is returned by Next when the stream is exhausted. It is not an
// error condition.
var Done = errors.New("volcano: done")

// ErrNotOpen is returned by Next on an unopened iterator.
var ErrNotOpen = errors.New("volcano: iterator not open")

// Iterator is the uniform operator interface (open/next/close).
// Implementations must tolerate Close without Open and repeated Close.
type Iterator interface {
	// Open prepares the operator and its inputs for producing items.
	Open() error
	// Next produces the next item, or Done when exhausted.
	Next() (Item, error)
	// Close releases resources. The iterator cannot be reused.
	Close() error
}

// Drain pulls every item from it (between Open and Close) and returns
// them. It is the standard test and example helper.
func Drain(it Iterator) ([]Item, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	var out []Item
	for {
		item, err := it.Next()
		if errors.Is(err, Done) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, item)
	}
}

// Count drains the iterator and returns only the item count.
func Count(it Iterator) (int, error) {
	if err := it.Open(); err != nil {
		return 0, err
	}
	defer it.Close()
	n := 0
	for {
		_, err := it.Next()
		if errors.Is(err, Done) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
	}
}

// Slice is a source operator over a fixed in-memory item slice. When
// bound to a context (see Bind), Next observes cancellation, so even a
// pure in-memory plan stops promptly.
type Slice struct {
	boundCtx
	items []Item
	pos   int
	open  bool
}

// NewSlice builds a source over items (not copied).
func NewSlice(items []Item) *Slice { return &Slice{items: items} }

// FromOIDs is a convenience source over a slice of values of any type,
// boxing each element as an Item.
func FromOIDs[T any](vals []T) *Slice {
	items := make([]Item, len(vals))
	for i, v := range vals {
		items[i] = v
	}
	return &Slice{items: items}
}

// Open implements Iterator.
func (s *Slice) Open() error {
	s.pos = 0
	s.open = true
	return nil
}

// Next implements Iterator.
func (s *Slice) Next() (Item, error) {
	if !s.open {
		return nil, ErrNotOpen
	}
	if err := s.err(); err != nil {
		return nil, err
	}
	if s.pos >= len(s.items) {
		return nil, Done
	}
	item := s.items[s.pos]
	s.pos++
	return item, nil
}

// Close implements Iterator.
func (s *Slice) Close() error {
	s.open = false
	return nil
}

// Func adapts a generator function into an iterator: fn returns the
// next item or Done.
type Func struct {
	OpenFn  func() error
	NextFn  func() (Item, error)
	CloseFn func() error
	open    bool
}

// Open implements Iterator.
func (f *Func) Open() error {
	f.open = true
	if f.OpenFn != nil {
		return f.OpenFn()
	}
	return nil
}

// Next implements Iterator.
func (f *Func) Next() (Item, error) {
	if !f.open {
		return nil, ErrNotOpen
	}
	return f.NextFn()
}

// Close implements Iterator.
func (f *Func) Close() error {
	f.open = false
	if f.CloseFn != nil {
		return f.CloseFn()
	}
	return nil
}

// typeError builds the standard operator type-mismatch error.
func typeError(op string, item Item) error {
	return fmt.Errorf("volcano: %s: unexpected item type %T", op, item)
}
