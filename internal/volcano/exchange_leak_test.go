package volcano

import (
	"runtime"
	"testing"

	"revelation/internal/leakcheck"
)

// waitGoroutines asserts the goroutine count drained back to at most
// want; it delegates to the shared leak detector (internal/leakcheck),
// which the query-cancellation chaos test reuses.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	leakcheck.Check(t, want)
}

// TestExchangeEarlyCloseDrainsProducers is the regression test for the
// early-close leak: a consumer that stops after the first item must not
// strand producer goroutines blocked on the exchange queue. With a
// queue shorter than the input, producers are guaranteed to be parked
// in send when Close runs.
func TestExchangeEarlyCloseDrainsProducers(t *testing.T) {
	before := runtime.NumGoroutine()
	items := make([]Item, 1000)
	for i := range items {
		items[i] = i
	}
	parts := PartitionSlice(items, 8)
	ex := NewExchange(8, func(part int) (Iterator, error) {
		return NewSlice(parts[part]), nil
	})
	ex.QueueLen = 1 // force producers to block mid-stream
	if err := ex.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := ex.Next(); err != nil {
		t.Fatalf("Next: %v", err)
	}
	// Consumer walks away after one of 1000 items.
	if err := ex.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	waitGoroutines(t, before)

	// Close must be idempotent and Next must refuse a closed exchange.
	if err := ex.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := ex.Next(); err != ErrNotOpen {
		t.Fatalf("Next after Close: %v, want ErrNotOpen", err)
	}
}

// TestExchangeReopenAfterEarlyClose confirms the exchange is reusable:
// a full drain after an early-closed run sees every item exactly once.
func TestExchangeReopenAfterEarlyClose(t *testing.T) {
	before := runtime.NumGoroutine()
	items := make([]Item, 100)
	for i := range items {
		items[i] = i
	}
	parts := PartitionSlice(items, 4)
	ex := NewExchange(4, func(part int) (Iterator, error) {
		return NewSlice(parts[part]), nil
	})
	ex.QueueLen = 1
	if err := ex.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := ex.Next(); err != nil {
		t.Fatalf("Next: %v", err)
	}
	if err := ex.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	if err := ex.Open(); err != nil {
		t.Fatalf("reopen: %v", err)
	}
	seen := map[int]bool{}
	for {
		item, err := ex.Next()
		if err == Done {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		v := item.(int)
		if seen[v] {
			t.Fatalf("item %d delivered twice", v)
		}
		seen[v] = true
	}
	if len(seen) != 100 {
		t.Fatalf("drained %d items, want 100", len(seen))
	}
	if err := ex.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	waitGoroutines(t, before)
}
