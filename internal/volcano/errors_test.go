package volcano

import (
	"errors"
	"testing"
)

// failing is an iterator that errs at a chosen point.
type failing struct {
	failOpen  bool
	failAt    int // Next index to fail at (-1 never)
	failClose bool
	n         int
	items     []Item
}

var errInjected = errors.New("injected")

func (f *failing) Open() error {
	if f.failOpen {
		return errInjected
	}
	return nil
}

func (f *failing) Next() (Item, error) {
	if f.failAt >= 0 && f.n == f.failAt {
		return nil, errInjected
	}
	if f.n >= len(f.items) {
		return nil, Done
	}
	item := f.items[f.n]
	f.n++
	return item, nil
}

func (f *failing) Close() error {
	if f.failClose {
		return errInjected
	}
	return nil
}

func items(n int) []Item {
	out := make([]Item, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestOpenErrorsPropagate(t *testing.T) {
	cases := map[string]Iterator{
		"filter":   NewFilter(&failing{failOpen: true}, func(Item) (bool, error) { return true, nil }),
		"project":  NewProject(&failing{failOpen: true}, func(it Item) (Item, error) { return it, nil }),
		"limit":    NewLimit(&failing{failOpen: true}, 3),
		"sort":     NewSort(&failing{failOpen: true}, func(a, b Item) bool { return false }),
		"material": NewMaterialize(&failing{failOpen: true}),
		"hashjoin-right": NewHashJoin(NewSlice(items(2)), &failing{failOpen: true},
			func(it Item) (any, error) { return it, nil },
			func(it Item) (any, error) { return it, nil }),
		"hashjoin-left": NewHashJoin(&failing{failOpen: true, failAt: -1}, NewSlice(items(2)),
			func(it Item) (any, error) { return it, nil },
			func(it Item) (any, error) { return it, nil }),
		"nested": NewNestedLoops(&failing{failOpen: true}, NewSlice(items(2)),
			func(l, r Item) (bool, error) { return true, nil }),
		"aggregate": NewHashAggregate(&failing{failOpen: true},
			func(it Item) (any, error) { return it, nil }, CountAgg()),
		"onetoone": NewOneToOneMatch(&failing{failOpen: true}, NewSlice(items(1)),
			func(l, r Item) (Item, error) { return l, nil }),
	}
	for name, it := range cases {
		if err := it.Open(); !errors.Is(err, errInjected) {
			t.Errorf("%s: Open err = %v, want injected", name, err)
		}
	}
}

func TestMidStreamErrorsPropagate(t *testing.T) {
	mk := func() *failing { return &failing{failAt: 2, items: items(10)} }
	cases := map[string]Iterator{
		"filter":  NewFilter(mk(), func(Item) (bool, error) { return true, nil }),
		"project": NewProject(mk(), func(it Item) (Item, error) { return it, nil }),
		"limit":   NewLimit(mk(), 8),
	}
	for name, it := range cases {
		if _, err := Drain(it); !errors.Is(err, errInjected) {
			t.Errorf("%s: drain err = %v, want injected", name, err)
		}
	}
	// Blocking operators hit it at Open.
	blocking := map[string]Iterator{
		"sort": NewSort(mk(), func(a, b Item) bool { return false }),
		"aggregate": NewHashAggregate(mk(),
			func(it Item) (any, error) { return it, nil }, CountAgg()),
		"materialize": NewMaterialize(mk()),
	}
	for name, it := range blocking {
		if err := it.Open(); !errors.Is(err, errInjected) {
			t.Errorf("%s: Open err = %v, want injected", name, err)
		}
	}
}

func TestKeyFuncErrorsPropagate(t *testing.T) {
	j := NewHashJoin(NewSlice(items(3)), NewSlice(items(3)),
		func(Item) (any, error) { return nil, errInjected },
		func(it Item) (any, error) { return it, nil })
	if _, err := Drain(j); !errors.Is(err, errInjected) {
		t.Errorf("probe key err = %v", err)
	}
	j2 := NewHashJoin(NewSlice(items(3)), NewSlice(items(3)),
		func(it Item) (any, error) { return it, nil },
		func(Item) (any, error) { return nil, errInjected })
	if err := j2.Open(); !errors.Is(err, errInjected) {
		t.Errorf("build key err = %v", err)
	}
	agg := NewHashAggregate(NewSlice(items(3)),
		func(Item) (any, error) { return nil, errInjected }, CountAgg())
	if err := agg.Open(); !errors.Is(err, errInjected) {
		t.Errorf("agg key err = %v", err)
	}
}

func TestAggregateStepErrorPropagates(t *testing.T) {
	agg := NewHashAggregate(NewSlice(items(3)),
		func(it Item) (any, error) { return 0, nil },
		SumIntAgg("s", func(Item) (int64, error) { return 0, errInjected }))
	if err := agg.Open(); !errors.Is(err, errInjected) {
		t.Errorf("step err = %v", err)
	}
}

func TestExternalSortInputError(t *testing.T) {
	// Input fails mid-stream during run generation.
	es := NewExternalSort(&failing{failAt: 5, items: items(100)},
		func(a, b Item) bool { return a.(int) < b.(int) },
		intCodec{}, nil, 10)
	// Pool is nil but the error fires before any spill of the second
	// run; use a batch size that spills only after the failure point.
	if err := es.Open(); !errors.Is(err, errInjected) {
		t.Errorf("external sort input err = %v", err)
	}
}

func TestPointerJoinTypeError(t *testing.T) {
	j := NewPointerJoin(NewSlice(items(1)), nil, 0, NaivePointer)
	if _, err := Drain(j); err == nil {
		t.Error("non-object input accepted")
	}
}
