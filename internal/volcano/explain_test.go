package volcano

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"revelation/internal/buffer"
	"revelation/internal/disk"
	"revelation/internal/expr"
)

func TestExplainRendersTree(t *testing.T) {
	s := testStore(t, 20)
	plan := NewLimit(
		NewFilter(
			NewProject(NewHeapScan(s.File, expr.IntCmp{Field: 0, Op: expr.GT, Value: 3}),
				func(it Item) (Item, error) { return it, nil }),
			func(Item) (bool, error) { return true, nil }),
		5)
	out := Explain(plan)
	for _, want := range []string{"limit(5)", "filter", "project", "heap-scan[ints[0] > 3]"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	// Indentation increases down the tree.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("Explain lines = %d:\n%s", len(lines), out)
	}
	for i := 1; i < len(lines); i++ {
		if !strings.HasPrefix(lines[i], strings.Repeat("  ", i)) {
			t.Errorf("line %d not indented: %q", i, lines[i])
		}
	}
}

func TestExplainJoinsAndExchange(t *testing.T) {
	j := NewHashJoin(intSource(1), intSource(2),
		func(it Item) (any, error) { return it, nil },
		func(it Item) (any, error) { return it, nil })
	out := Explain(j)
	if !strings.Contains(out, "hash-join") || strings.Count(out, "slice(1 items)") != 2 {
		t.Errorf("join plan:\n%s", out)
	}
	e := NewExchange(3, func(int) (Iterator, error) { return intSource(), nil })
	if !strings.Contains(Explain(e), "exchange(degree 3)") {
		t.Errorf("exchange plan:\n%s", Explain(e))
	}
	sorted := NewSort(intSource(1), nil)
	if !strings.Contains(Explain(sorted), "sort") {
		t.Error("sort plan")
	}
	pj := NewPointerJoin(intSource(), nil, 2, SortedPointer)
	if !strings.Contains(Explain(pj), "pointer-join(field 2, sorted)") {
		t.Errorf("pointer join plan:\n%s", Explain(pj))
	}
}

// Property: the external sort agrees with sort.Ints on any input.
func TestExternalSortProperty(t *testing.T) {
	f := func(vals []int16, runSize uint8) bool {
		d := disk.New(0)
		pool := buffer.New(d, 64, buffer.LRU)
		items := make([]Item, len(vals))
		want := make([]int, len(vals))
		for i, v := range vals {
			items[i] = int(v)
			want[i] = int(v)
		}
		sort.Ints(want)
		es := NewExternalSort(NewSlice(items),
			func(a, b Item) bool { return a.(int) < b.(int) },
			intCodec{}, pool, int(runSize%40)+1)
		got, err := Drain(es)
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].(int) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: filter+project over any input preserves exactly the
// matching elements in order.
func TestFilterProjectProperty(t *testing.T) {
	f := func(vals []int32) bool {
		items := make([]Item, len(vals))
		for i, v := range vals {
			items[i] = int(v)
		}
		plan := NewProject(
			NewFilter(NewSlice(items), func(it Item) (bool, error) {
				return it.(int)%2 == 0, nil
			}),
			func(it Item) (Item, error) { return it.(int) + 1, nil })
		got, err := Drain(plan)
		if err != nil {
			return false
		}
		var want []int
		for _, v := range vals {
			if int(v)%2 == 0 {
				want = append(want, int(v)+1)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].(int) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
