package volcano

import (
	"context"
	"errors"

	"revelation/internal/qtrace"
)

// ContextBinder is implemented by operators that observe a query
// context: once bound, the operator's Next returns the context's error
// promptly after cancellation or deadline expiry, and any goroutines it
// owns (Exchange producers) exit without waiting for a consumer.
//
// BindContext must be called before Open; rebinding an open operator is
// a data race. The usual entry point is Bind, which walks a whole plan.
type ContextBinder interface {
	BindContext(ctx context.Context)
}

// Bind installs ctx on every operator of the plan rooted at it that
// implements ContextBinder, walking the tree through the same operator
// descriptions Explain uses. Operators that pre-date the lifecycle
// machinery are simply skipped: they still stop promptly because their
// sources and consumers observe the context.
//
// Bind returns it, so plans read:
//
//	plan := volcano.Bind(ctx, assembly.New(...))
//
// Call Bind before Open. A nil ctx is a no-op.
func Bind(ctx context.Context, it Iterator) Iterator {
	if ctx == nil || it == nil {
		return it
	}
	bindTree(ctx, it)
	return it
}

func bindTree(ctx context.Context, it Iterator) {
	if cb, ok := it.(ContextBinder); ok {
		cb.BindContext(ctx)
	}
	_, inputs := describe(it)
	for _, in := range inputs {
		if in != nil {
			bindTree(ctx, in)
		}
	}
}

// DrainCtx is the traced query entry point: it opens a plan-level span
// (layer "plan") covering open → drain → close, binds the span-carrying
// context to every operator of the plan, and pulls all items. With no
// span in ctx it degrades to Bind + Drain with zero overhead.
func DrainCtx(ctx context.Context, it Iterator) ([]Item, error) {
	sp, ctx := qtrace.Start(ctx, qtrace.LayerPlan, "drain")
	defer sp.End()
	Bind(ctx, it)
	return Drain(it)
}

// IsLifecycleErr reports whether err terminated a query for lifecycle
// reasons — cancellation or deadline expiry — rather than a data or
// I/O failure.
func IsLifecycleErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// boundCtx is the embeddable ContextBinder state shared by the
// operators in this package. The zero value is unbound (no checks).
type boundCtx struct {
	ctx context.Context
}

// BindContext implements ContextBinder.
func (b *boundCtx) BindContext(ctx context.Context) { b.ctx = ctx }

// err returns the bound context's error, or nil when unbound or live.
func (b *boundCtx) err() error {
	if b.ctx == nil {
		return nil
	}
	return b.ctx.Err()
}
