package volcano

import (
	"fmt"
	"strings"
)

// PlanNoder lets an operator describe itself for plan explanation: a
// short label plus its input operators. Operators that do not
// implement it render by their Go type.
type PlanNoder interface {
	PlanNode() (label string, inputs []Iterator)
}

// Explain renders a query plan tree rooted at it, one operator per
// line, inputs indented beneath their consumer.
func Explain(it Iterator) string {
	var b strings.Builder
	explain(&b, it, 0)
	return b.String()
}

func explain(b *strings.Builder, it Iterator, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	label, inputs := describe(it)
	b.WriteString(label)
	b.WriteString("\n")
	for _, in := range inputs {
		explain(b, in, depth+1)
	}
}

func describe(it Iterator) (string, []Iterator) {
	if p, ok := it.(PlanNoder); ok {
		return p.PlanNode()
	}
	switch v := it.(type) {
	case *Slice:
		return fmt.Sprintf("slice(%d items)", len(v.items)), nil
	case *Filter:
		return "filter", []Iterator{v.Input}
	case *Project:
		return "project", []Iterator{v.Input}
	case *Limit:
		return fmt.Sprintf("limit(%d)", v.N), []Iterator{v.Input}
	case *Materialize:
		return "materialize", []Iterator{v.Input}
	case *Sort:
		return "sort", []Iterator{v.Input}
	case *ExternalSort:
		return fmt.Sprintf("external-sort(runs of %d)", v.RunSize), []Iterator{v.Input}
	case *HashJoin:
		return "hash-join", []Iterator{v.Left, v.Right}
	case *NestedLoops:
		return "nested-loops", []Iterator{v.Left, v.Right}
	case *PointerJoin:
		mode := "naive"
		if v.Mode == SortedPointer {
			mode = "sorted"
		}
		return fmt.Sprintf("pointer-join(field %d, %s)", v.Field, mode), []Iterator{v.Input}
	case *OneToOneMatch:
		return "one-to-one-match", []Iterator{v.Left, v.Right}
	case *HashAggregate:
		return fmt.Sprintf("hash-aggregate(%d aggs)", len(v.Specs)), []Iterator{v.Input}
	case *Exchange:
		return fmt.Sprintf("exchange(degree %d)", v.Degree), nil
	case *HeapScan:
		label := "heap-scan"
		if v.Pred != nil {
			label += fmt.Sprintf("[%s]", v.Pred)
		}
		return label, nil
	case *IndexScan:
		return fmt.Sprintf("index-scan[%v..%v]", v.From, v.To), nil
	default:
		return fmt.Sprintf("%T", it), nil
	}
}
