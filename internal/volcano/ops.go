package volcano

import (
	"errors"
	"fmt"

	"revelation/internal/expr"
	"revelation/internal/object"
)

// Filter passes through items for which Keep returns true.
type Filter struct {
	Input Iterator
	Keep  func(Item) (bool, error)
}

// NewFilter builds a filter with an arbitrary keep function.
func NewFilter(in Iterator, keep func(Item) (bool, error)) *Filter {
	return &Filter{Input: in, Keep: keep}
}

// NewObjectFilter builds a filter evaluating pred over *object.Object
// items; any other item type is an error.
func NewObjectFilter(in Iterator, pred expr.Predicate) *Filter {
	return &Filter{Input: in, Keep: func(item Item) (bool, error) {
		o, ok := item.(*object.Object)
		if !ok {
			return false, typeError("filter", item)
		}
		return pred.Eval(o), nil
	}}
}

// Open implements Iterator.
func (f *Filter) Open() error { return f.Input.Open() }

// Next implements Iterator.
func (f *Filter) Next() (Item, error) {
	for {
		item, err := f.Input.Next()
		if err != nil {
			return nil, err
		}
		keep, err := f.Keep(item)
		if err != nil {
			return nil, err
		}
		if keep {
			return item, nil
		}
	}
}

// Close implements Iterator.
func (f *Filter) Close() error { return f.Input.Close() }

// Project transforms each input item with Fn (projection / map).
type Project struct {
	Input Iterator
	Fn    func(Item) (Item, error)
}

// NewProject builds a projection.
func NewProject(in Iterator, fn func(Item) (Item, error)) *Project {
	return &Project{Input: in, Fn: fn}
}

// Open implements Iterator.
func (p *Project) Open() error { return p.Input.Open() }

// Next implements Iterator.
func (p *Project) Next() (Item, error) {
	item, err := p.Input.Next()
	if err != nil {
		return nil, err
	}
	return p.Fn(item)
}

// Close implements Iterator.
func (p *Project) Close() error { return p.Input.Close() }

// Limit passes through at most N items.
type Limit struct {
	Input Iterator
	N     int
	seen  int
}

// NewLimit builds a limit operator.
func NewLimit(in Iterator, n int) *Limit { return &Limit{Input: in, N: n} }

// Open implements Iterator.
func (l *Limit) Open() error {
	l.seen = 0
	return l.Input.Open()
}

// Next implements Iterator.
func (l *Limit) Next() (Item, error) {
	if l.seen >= l.N {
		return nil, Done
	}
	item, err := l.Input.Next()
	if err != nil {
		return nil, err
	}
	l.seen++
	return item, nil
}

// Close implements Iterator.
func (l *Limit) Close() error { return l.Input.Close() }

// Materialize drains its input at Open and replays the buffered items;
// it decouples producer and consumer cost, like Volcano's choose-plan
// support operators.
type Materialize struct {
	Input Iterator
	items []Item
	pos   int
	open  bool
}

// NewMaterialize builds a materialization point.
func NewMaterialize(in Iterator) *Materialize { return &Materialize{Input: in} }

// Open implements Iterator.
func (m *Materialize) Open() error {
	items, err := Drain(m.Input)
	if err != nil {
		return err
	}
	m.items = items
	m.pos = 0
	m.open = true
	return nil
}

// Next implements Iterator.
func (m *Materialize) Next() (Item, error) {
	if !m.open {
		return nil, ErrNotOpen
	}
	if m.pos >= len(m.items) {
		return nil, Done
	}
	item := m.items[m.pos]
	m.pos++
	return item, nil
}

// Close implements Iterator.
func (m *Materialize) Close() error {
	m.open = false
	m.items = nil
	return nil
}

// AggSpec describes one aggregate column.
type AggSpec struct {
	Name string
	// Init produces the initial accumulator for a group.
	Init func() any
	// Step folds an item into the accumulator.
	Step func(acc any, item Item) (any, error)
}

// CountAgg counts items per group.
func CountAgg() AggSpec {
	return AggSpec{
		Name: "count",
		Init: func() any { return 0 },
		Step: func(acc any, _ Item) (any, error) { return acc.(int) + 1, nil },
	}
}

// SumIntAgg sums an int64 extracted from each item.
func SumIntAgg(name string, get func(Item) (int64, error)) AggSpec {
	return AggSpec{
		Name: name,
		Init: func() any { return int64(0) },
		Step: func(acc any, item Item) (any, error) {
			v, err := get(item)
			if err != nil {
				return nil, err
			}
			return acc.(int64) + v, nil
		},
	}
}

// MinIntAgg tracks the minimum of an int64 extracted from each item.
func MinIntAgg(name string, get func(Item) (int64, error)) AggSpec {
	return AggSpec{
		Name: name,
		Init: func() any { return any(nil) },
		Step: func(acc any, item Item) (any, error) {
			v, err := get(item)
			if err != nil {
				return nil, err
			}
			if acc == nil || v < acc.(int64) {
				return v, nil
			}
			return acc, nil
		},
	}
}

// MaxIntAgg tracks the maximum of an int64 extracted from each item.
func MaxIntAgg(name string, get func(Item) (int64, error)) AggSpec {
	return AggSpec{
		Name: name,
		Init: func() any { return any(nil) },
		Step: func(acc any, item Item) (any, error) {
			v, err := get(item)
			if err != nil {
				return nil, err
			}
			if acc == nil || v > acc.(int64) {
				return v, nil
			}
			return acc, nil
		},
	}
}

// Group is the output row of an aggregation: the group key plus one
// accumulated value per AggSpec, in spec order.
type Group struct {
	Key  any
	Aggs []any
}

// HashAggregate groups input items by key and folds aggregates. It is
// blocking: the input drains at Open.
type HashAggregate struct {
	Input Iterator
	Key   func(Item) (any, error)
	Specs []AggSpec

	groups []Group
	pos    int
	open   bool
}

// NewHashAggregate builds a hash aggregation.
func NewHashAggregate(in Iterator, key func(Item) (any, error), specs ...AggSpec) *HashAggregate {
	return &HashAggregate{Input: in, Key: key, Specs: specs}
}

// Open implements Iterator.
func (h *HashAggregate) Open() error {
	if err := h.Input.Open(); err != nil {
		return err
	}
	defer h.Input.Close()
	type state struct {
		idx  int
		aggs []any
	}
	table := map[any]*state{}
	var order []any
	for {
		item, err := h.Input.Next()
		if errors.Is(err, Done) {
			break
		}
		if err != nil {
			return err
		}
		k, err := h.Key(item)
		if err != nil {
			return err
		}
		st, ok := table[k]
		if !ok {
			st = &state{idx: len(order), aggs: make([]any, len(h.Specs))}
			for i, sp := range h.Specs {
				st.aggs[i] = sp.Init()
			}
			table[k] = st
			order = append(order, k)
		}
		for i, sp := range h.Specs {
			st.aggs[i], err = sp.Step(st.aggs[i], item)
			if err != nil {
				return err
			}
		}
	}
	h.groups = make([]Group, 0, len(order))
	for _, k := range order {
		h.groups = append(h.groups, Group{Key: k, Aggs: table[k].aggs})
	}
	h.pos = 0
	h.open = true
	return nil
}

// Next implements Iterator.
func (h *HashAggregate) Next() (Item, error) {
	if !h.open {
		return nil, ErrNotOpen
	}
	if h.pos >= len(h.groups) {
		return nil, Done
	}
	g := h.groups[h.pos]
	h.pos++
	return g, nil
}

// Close implements Iterator.
func (h *HashAggregate) Close() error {
	h.open = false
	h.groups = nil
	return nil
}

// OneToOneMatch pairs the i-th items of two equal-length inputs — the
// Volcano one-to-one match operator of the authors' earlier report,
// reduced to its positional form. Mismatched lengths are an error.
type OneToOneMatch struct {
	Left, Right Iterator
	Combine     func(l, r Item) (Item, error)
}

// NewOneToOneMatch builds a positional match operator.
func NewOneToOneMatch(l, r Iterator, combine func(l, r Item) (Item, error)) *OneToOneMatch {
	return &OneToOneMatch{Left: l, Right: r, Combine: combine}
}

// Open implements Iterator.
func (m *OneToOneMatch) Open() error {
	if err := m.Left.Open(); err != nil {
		return err
	}
	if err := m.Right.Open(); err != nil {
		m.Left.Close()
		return err
	}
	return nil
}

// Next implements Iterator.
func (m *OneToOneMatch) Next() (Item, error) {
	l, lerr := m.Left.Next()
	r, rerr := m.Right.Next()
	if errors.Is(lerr, Done) && errors.Is(rerr, Done) {
		return nil, Done
	}
	if errors.Is(lerr, Done) != errors.Is(rerr, Done) {
		return nil, fmt.Errorf("volcano: one-to-one match inputs have different lengths")
	}
	if lerr != nil {
		return nil, lerr
	}
	if rerr != nil {
		return nil, rerr
	}
	return m.Combine(l, r)
}

// Close implements Iterator.
func (m *OneToOneMatch) Close() error {
	lerr := m.Left.Close()
	rerr := m.Right.Close()
	if lerr != nil {
		return lerr
	}
	return rerr
}
