package volcano

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"revelation/internal/btree"
	"revelation/internal/buffer"
	"revelation/internal/disk"
	"revelation/internal/expr"
	"revelation/internal/heap"
	"revelation/internal/object"
)

func ints(items []Item) []int {
	out := make([]int, len(items))
	for i, it := range items {
		out[i] = it.(int)
	}
	return out
}

func intSource(vals ...int) *Slice { return FromOIDs(vals) }

func TestSliceSource(t *testing.T) {
	got, err := Drain(intSource(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Drain = %v", got)
	}
	s := intSource(1)
	if _, err := s.Next(); !errors.Is(err, ErrNotOpen) {
		t.Errorf("Next before Open err = %v", err)
	}
}

func TestFilter(t *testing.T) {
	f := NewFilter(intSource(1, 2, 3, 4, 5, 6), func(it Item) (bool, error) {
		return it.(int)%2 == 0, nil
	})
	got, err := Drain(f)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 4, 6}
	if fmt.Sprint(ints(got)) != fmt.Sprint(want) {
		t.Errorf("filter = %v, want %v", got, want)
	}
}

func TestFilterErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	f := NewFilter(intSource(1), func(Item) (bool, error) { return false, boom })
	if _, err := Drain(f); !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestProject(t *testing.T) {
	p := NewProject(intSource(1, 2, 3), func(it Item) (Item, error) {
		return it.(int) * 10, nil
	})
	got, err := Drain(p)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 10 || got[2] != 30 {
		t.Errorf("project = %v", got)
	}
}

func TestLimit(t *testing.T) {
	got, err := Drain(NewLimit(intSource(1, 2, 3, 4), 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("limit = %v", got)
	}
	got, err = Drain(NewLimit(intSource(1), 5))
	if err != nil || len(got) != 1 {
		t.Errorf("limit beyond input = %v, %v", got, err)
	}
}

func TestMaterialize(t *testing.T) {
	m := NewMaterialize(intSource(3, 1, 2))
	got, err := Drain(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("materialize = %v", got)
	}
}

func TestSort(t *testing.T) {
	s := NewSort(intSource(3, 1, 2, 5, 4), func(a, b Item) bool { return a.(int) < b.(int) })
	got, err := Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ints(got) {
		if v != i+1 {
			t.Fatalf("sort = %v", got)
		}
	}
}

func TestCount(t *testing.T) {
	n, err := Count(intSource(1, 2, 3))
	if err != nil || n != 3 {
		t.Errorf("Count = (%d, %v)", n, err)
	}
}

func TestHashJoin(t *testing.T) {
	left := intSource(1, 2, 3, 4)
	right := intSource(20, 30, 30, 50)
	j := NewHashJoin(left, right,
		func(it Item) (any, error) { return it.(int) * 10, nil },
		func(it Item) (any, error) { return it.(int), nil })
	got, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	// 2 joins with 20; 3 joins with both 30s.
	if len(got) != 3 {
		t.Fatalf("hash join produced %d pairs: %v", len(got), got)
	}
	counts := map[int]int{}
	for _, it := range got {
		counts[it.(Pair).Left.(int)]++
	}
	if counts[2] != 1 || counts[3] != 2 {
		t.Errorf("join multiplicity wrong: %v", counts)
	}
}

func TestNestedLoopsNonEqui(t *testing.T) {
	j := NewNestedLoops(intSource(1, 5), intSource(2, 4, 6),
		func(l, r Item) (bool, error) { return l.(int) < r.(int), nil })
	got, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	// 1 < {2,4,6}: 3 pairs; 5 < {6}: 1 pair.
	if len(got) != 4 {
		t.Errorf("nested loops = %d pairs", len(got))
	}
}

func TestOneToOneMatch(t *testing.T) {
	m := NewOneToOneMatch(intSource(1, 2), intSource(10, 20),
		func(l, r Item) (Item, error) { return l.(int) + r.(int), nil })
	got, err := Drain(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 11 || got[1] != 22 {
		t.Errorf("match = %v", got)
	}
	// Length mismatch is an error.
	m2 := NewOneToOneMatch(intSource(1), intSource(1, 2),
		func(l, r Item) (Item, error) { return nil, nil })
	if _, err := Drain(m2); err == nil {
		t.Error("length mismatch not detected")
	}
}

func TestHashAggregate(t *testing.T) {
	agg := NewHashAggregate(intSource(1, 2, 3, 4, 5, 6),
		func(it Item) (any, error) { return it.(int) % 2, nil },
		CountAgg(),
		SumIntAgg("sum", func(it Item) (int64, error) { return int64(it.(int)), nil }),
		MinIntAgg("min", func(it Item) (int64, error) { return int64(it.(int)), nil }),
		MaxIntAgg("max", func(it Item) (int64, error) { return int64(it.(int)), nil }),
	)
	got, err := Drain(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("groups = %d", len(got))
	}
	for _, it := range got {
		g := it.(Group)
		switch g.Key.(int) {
		case 1: // odds: 1,3,5
			if g.Aggs[0].(int) != 3 || g.Aggs[1].(int64) != 9 || g.Aggs[2].(int64) != 1 || g.Aggs[3].(int64) != 5 {
				t.Errorf("odd group = %+v", g)
			}
		case 0: // evens: 2,4,6
			if g.Aggs[0].(int) != 3 || g.Aggs[1].(int64) != 12 || g.Aggs[2].(int64) != 2 || g.Aggs[3].(int64) != 6 {
				t.Errorf("even group = %+v", g)
			}
		default:
			t.Errorf("unexpected key %v", g.Key)
		}
	}
}

// --- storage-backed operator tests ---

func testStore(t *testing.T, nObjects int) *object.Store {
	t.Helper()
	d := disk.New(0)
	pool := buffer.New(d, 256, buffer.LRU)
	f, err := heap.Create(pool, nObjects/9+2)
	if err != nil {
		t.Fatal(err)
	}
	s := object.NewStore(f, object.NewMapLocator(), object.NewCatalog())
	for i := 1; i <= nObjects; i++ {
		o := &object.Object{
			OID:   object.OID(i),
			Class: 1,
			Ints:  []int32{int32(i), int32(i % 10), 0, 0},
			Refs:  make([]object.OID, 8),
		}
		if i > 1 {
			o.Refs[0] = object.OID(i - 1) // chain
		}
		if _, err := s.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestHeapScanAll(t *testing.T) {
	s := testStore(t, 100)
	got, err := Drain(NewHeapScan(s.File, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Errorf("heap scan saw %d objects", len(got))
	}
	if _, ok := got[0].(*object.Object); !ok {
		t.Errorf("heap scan item type %T", got[0])
	}
}

func TestHeapScanWithPredicate(t *testing.T) {
	s := testStore(t, 100)
	pred := expr.IntCmp{Field: 1, Op: expr.EQ, Value: 3}
	got, err := Drain(NewHeapScan(s.File, pred))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 { // i % 10 == 3 for 10 of 100
		t.Errorf("predicate scan saw %d objects, want 10", len(got))
	}
}

func TestObjectFilter(t *testing.T) {
	s := testStore(t, 50)
	f := NewObjectFilter(NewHeapScan(s.File, nil), expr.IntCmp{Field: 0, Op: expr.LE, Value: 5})
	got, err := Drain(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Errorf("object filter saw %d", len(got))
	}
	// Wrong item type errors.
	bad := NewObjectFilter(intSource(1), expr.True{})
	if _, err := Drain(bad); err == nil {
		t.Error("object filter accepted non-object item")
	}
}

func TestIndexScan(t *testing.T) {
	d := disk.New(0)
	pool := buffer.New(d, 256, buffer.LRU)
	f, err := heap.Create(pool, 16)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := btree.Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	s := object.NewStore(f, object.NewBTreeLocator(tr), object.NewCatalog())
	for i := 1; i <= 100; i++ {
		o := &object.Object{OID: object.OID(i), Class: 1, Ints: []int32{int32(i)}}
		if _, err := s.Put(o); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Drain(NewIndexScan(s, 10, 19, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("index scan saw %d, want 10", len(got))
	}
	// Key order.
	for i, it := range got {
		if it.(*object.Object).OID != object.OID(10+i) {
			t.Errorf("index scan out of order at %d: %v", i, it.(*object.Object).OID)
		}
	}
	// Map locator is rejected.
	s2 := testStore(t, 10)
	if err := NewIndexScan(s2, 1, 5, nil).Open(); err == nil {
		t.Error("IndexScan accepted a map locator")
	}
}

func TestPointerJoinNaiveAndSorted(t *testing.T) {
	s := testStore(t, 60)
	for _, mode := range []PointerJoinMode{NaivePointer, SortedPointer} {
		scan := NewHeapScan(s.File, nil)
		j := NewPointerJoin(scan, s, 0, mode)
		got, err := Drain(j)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		// Objects 2..60 have a non-nil ref to predecessor: 59 pairs.
		if len(got) != 59 {
			t.Fatalf("mode %d: %d pairs, want 59", mode, len(got))
		}
		for _, it := range got {
			p := it.(Pair)
			parent := p.Left.(*object.Object)
			child := p.Right.(*object.Object)
			if parent.Refs[0] != child.OID {
				t.Fatalf("mode %d: pair mismatch %v -> %v", mode, parent.OID, child.OID)
			}
		}
	}
}

func TestSortedPointerJoinFetchesInPhysicalOrder(t *testing.T) {
	s := testStore(t, 60)
	dev := s.File.Pool().Device()
	// Flush stats, run sorted join, confirm reads are monotone by
	// checking total seek is small relative to naive random order.
	// With a sequential chain layout both are similar, so instead
	// verify the stronger property directly: the sorted mode's output
	// children appear in physical page order.
	j := NewPointerJoin(NewHeapScan(s.File, nil), s, 0, SortedPointer)
	got, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	var pages []uint32
	for _, it := range got {
		child := it.(Pair).Right.(*object.Object)
		rid, _, err := s.WhereIs(child.OID)
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, uint32(rid.Page))
	}
	if !sort.SliceIsSorted(pages, func(a, b int) bool { return pages[a] < pages[b] }) {
		t.Error("sorted pointer join children not in physical order")
	}
	_ = dev
}

func TestExchangeParallelFragments(t *testing.T) {
	parts := PartitionSlice([]Item{1, 2, 3, 4, 5, 6, 7}, 3)
	e := NewExchange(3, func(part int) (Iterator, error) {
		return NewSlice(parts[part]), nil
	})
	got, err := Drain(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("exchange produced %d items", len(got))
	}
	sum := 0
	for _, it := range got {
		sum += it.(int)
	}
	if sum != 28 {
		t.Errorf("exchange sum = %d, want 28", sum)
	}
}

func TestExchangeErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	e := NewExchange(2, func(part int) (Iterator, error) {
		if part == 1 {
			return nil, boom
		}
		return intSource(1, 2), nil
	})
	if err := e.Open(); err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	sawErr := false
	for {
		_, err := e.Next()
		if errors.Is(err, Done) {
			break
		}
		if err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Error("partition error never surfaced")
	}
}

func TestExchangeEarlyClose(t *testing.T) {
	big := make([]Item, 10000)
	for i := range big {
		big[i] = i
	}
	e := NewExchange(4, func(part int) (Iterator, error) {
		return NewSlice(big), nil
	})
	if err := e.Open(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := e.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err) // must not deadlock
	}
}

func TestPartitionSlice(t *testing.T) {
	parts := PartitionSlice([]Item{1, 2, 3, 4, 5}, 2)
	if len(parts) != 2 || len(parts[0]) != 3 || len(parts[1]) != 2 {
		t.Errorf("PartitionSlice = %v", parts)
	}
	parts = PartitionSlice(nil, 0)
	if len(parts) != 1 {
		t.Errorf("degenerate partition = %v", parts)
	}
}

// intCodec serializes ints for the external sort.
type intCodec struct{}

func (intCodec) Encode(it Item) ([]byte, error) {
	v := it.(int)
	return []byte(fmt.Sprintf("%d", v)), nil
}

func (intCodec) Decode(b []byte) (Item, error) {
	var v int
	_, err := fmt.Sscanf(string(b), "%d", &v)
	return v, err
}

func TestExternalSort(t *testing.T) {
	d := disk.New(0)
	pool := buffer.New(d, 32, buffer.LRU)
	const n = 5000
	vals := make([]Item, n)
	for i := range vals {
		vals[i] = (i * 7919) % n // pseudo-random permutation
	}
	es := NewExternalSort(NewSlice(vals),
		func(a, b Item) bool { return a.(int) < b.(int) },
		intCodec{}, pool, 100) // 50 runs
	got, err := Drain(es)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("external sort produced %d of %d", len(got), n)
	}
	for i, it := range got {
		if it.(int) != i {
			t.Fatalf("external sort out of order at %d: %v", i, it)
		}
	}
	if pool.PinnedFrames() != 0 {
		t.Error("external sort leaked pins")
	}
}

func TestExternalSortEmptyAndSingleRun(t *testing.T) {
	d := disk.New(0)
	pool := buffer.New(d, 8, buffer.LRU)
	es := NewExternalSort(NewSlice(nil), func(a, b Item) bool { return a.(int) < b.(int) }, intCodec{}, pool, 10)
	got, err := Drain(es)
	if err != nil || len(got) != 0 {
		t.Errorf("empty external sort = (%v, %v)", got, err)
	}
	es = NewExternalSort(intSource(3, 1, 2), func(a, b Item) bool { return a.(int) < b.(int) }, intCodec{}, pool, 10)
	got, err = Drain(es)
	if err != nil || len(got) != 3 || got[0] != 1 {
		t.Errorf("single-run external sort = (%v, %v)", got, err)
	}
}
