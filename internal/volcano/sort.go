package volcano

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"revelation/internal/buffer"
	hp "revelation/internal/heap"
	"revelation/internal/page"
)

// Sort is the in-memory sort operator: it drains its input at Open,
// orders the items with Less, and replays them. Like the paper's sort
// analogy for assembly, it enforces a physical property (order) that is
// not logically apparent.
type Sort struct {
	Input Iterator
	Less  func(a, b Item) bool

	items []Item
	pos   int
	open  bool
}

// NewSort builds an in-memory sort.
func NewSort(in Iterator, less func(a, b Item) bool) *Sort {
	return &Sort{Input: in, Less: less}
}

// Open implements Iterator.
func (s *Sort) Open() error {
	items, err := Drain(s.Input)
	if err != nil {
		return err
	}
	sort.SliceStable(items, func(i, j int) bool { return s.Less(items[i], items[j]) })
	s.items = items
	s.pos = 0
	s.open = true
	return nil
}

// Next implements Iterator.
func (s *Sort) Next() (Item, error) {
	if !s.open {
		return nil, ErrNotOpen
	}
	if s.pos >= len(s.items) {
		return nil, Done
	}
	item := s.items[s.pos]
	s.pos++
	return item, nil
}

// Close implements Iterator.
func (s *Sort) Close() error {
	s.open = false
	s.items = nil
	return nil
}

// Codec serializes items so the external sort can spill them to runs
// on a device.
type Codec interface {
	Encode(Item) ([]byte, error)
	Decode([]byte) (Item, error)
}

// ExternalSort is Volcano's external merge sort: the input is cut into
// sorted runs of at most RunSize items, each run spills to a heap file
// on Pool's device, and Next merges the runs with a k-way heap. Memory
// use is O(RunSize + number of runs), independent of input size.
type ExternalSort struct {
	Input   Iterator
	Less    func(a, b Item) bool
	Codec   Codec
	Pool    *buffer.Pool
	RunSize int

	runs  []*runReader
	merge *mergeHeap
	open  bool
}

// NewExternalSort builds an external sort spilling through pool.
func NewExternalSort(in Iterator, less func(a, b Item) bool, codec Codec, pool *buffer.Pool, runSize int) *ExternalSort {
	if runSize < 1 {
		runSize = 1
	}
	return &ExternalSort{Input: in, Less: less, Codec: codec, Pool: pool, RunSize: runSize}
}

// Open implements Iterator: run generation phase.
func (s *ExternalSort) Open() error {
	if err := s.Input.Open(); err != nil {
		return err
	}
	defer s.Input.Close()
	s.runs = nil
	batch := make([]Item, 0, s.RunSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		sort.SliceStable(batch, func(i, j int) bool { return s.Less(batch[i], batch[j]) })
		r, err := s.writeRun(batch)
		if err != nil {
			return err
		}
		s.runs = append(s.runs, r)
		batch = batch[:0]
		return nil
	}
	for {
		item, err := s.Input.Next()
		if errors.Is(err, Done) {
			break
		}
		if err != nil {
			return err
		}
		batch = append(batch, item)
		if len(batch) >= s.RunSize {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	// Prime the merge heap.
	s.merge = &mergeHeap{less: s.Less}
	for _, r := range s.runs {
		item, ok, err := r.next()
		if err != nil {
			return err
		}
		if ok {
			heap.Push(s.merge, runHead{item: item, run: r})
		}
	}
	s.open = true
	return nil
}

// writeRun spills one sorted batch into a fresh heap file extent.
func (s *ExternalSort) writeRun(batch []Item) (*runReader, error) {
	encoded := make([][]byte, len(batch))
	usable := s.Pool.Device().PageSize() - page.HeaderSize
	pages, free := 1, usable
	for i, item := range batch {
		rec, err := s.Codec.Encode(item)
		if err != nil {
			return nil, err
		}
		if len(rec) > page.MaxRecordSize(s.Pool.Device().PageSize()) {
			return nil, fmt.Errorf("volcano: external sort record of %d bytes exceeds page capacity", len(rec))
		}
		encoded[i] = rec
		// Exact sequential-packing account, mirroring Insert's
		// first-fit-forward behaviour.
		need := len(rec) + page.SlotSize
		if need > free {
			pages++
			free = usable
		}
		free -= need
	}
	f, err := hp.Create(s.Pool, pages)
	if err != nil {
		return nil, err
	}
	for _, rec := range encoded {
		if _, err := f.Insert(rec); err != nil {
			// Fragmentation exceeded the slack: grow into a new file is
			// not possible with fixed extents, so be generous instead.
			return nil, fmt.Errorf("volcano: external sort run overflow: %w", err)
		}
	}
	return &runReader{file: f, codec: s.Codec}, nil
}

// Next implements Iterator: merge phase.
func (s *ExternalSort) Next() (Item, error) {
	if !s.open {
		return nil, ErrNotOpen
	}
	if s.merge.Len() == 0 {
		return nil, Done
	}
	head := heap.Pop(s.merge).(runHead)
	item, ok, err := head.run.next()
	if err != nil {
		return nil, err
	}
	if ok {
		heap.Push(s.merge, runHead{item: item, run: head.run})
	}
	return head.item, nil
}

// Close implements Iterator.
func (s *ExternalSort) Close() error {
	s.open = false
	s.runs = nil
	s.merge = nil
	return nil
}

// runReader streams a spilled run back, page by page.
type runReader struct {
	file    *hp.File
	codec   Codec
	pageIdx int
	pending []Item
}

func (r *runReader) next() (Item, bool, error) {
	for len(r.pending) == 0 {
		if r.pageIdx >= r.file.NumPages() {
			return nil, false, nil
		}
		var decErr error
		err := r.file.ScanPage(r.pageIdx, func(_ hp.RID, rec []byte) bool {
			item, derr := r.codec.Decode(rec)
			if derr != nil {
				decErr = derr
				return false
			}
			r.pending = append(r.pending, item)
			return true
		})
		if decErr != nil {
			return nil, false, decErr
		}
		if err != nil {
			return nil, false, err
		}
		r.pageIdx++
	}
	item := r.pending[0]
	r.pending = r.pending[1:]
	return item, true, nil
}

// runHead is a merge-heap entry: the current head item of one run.
type runHead struct {
	item Item
	run  *runReader
}

type mergeHeap struct {
	heads []runHead
	less  func(a, b Item) bool
}

func (m *mergeHeap) Len() int           { return len(m.heads) }
func (m *mergeHeap) Less(i, j int) bool { return m.less(m.heads[i].item, m.heads[j].item) }
func (m *mergeHeap) Swap(i, j int)      { m.heads[i], m.heads[j] = m.heads[j], m.heads[i] }
func (m *mergeHeap) Push(x any)         { m.heads = append(m.heads, x.(runHead)) }
func (m *mergeHeap) Pop() any {
	last := m.heads[len(m.heads)-1]
	m.heads = m.heads[:len(m.heads)-1]
	return last
}
