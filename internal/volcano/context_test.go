package volcano

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"revelation/internal/leakcheck"
)

// TestBindSliceCancellation: a bound in-memory source observes
// cancellation instead of streaming to exhaustion.
func TestBindSliceCancellation(t *testing.T) {
	items := make([]Item, 100)
	for i := range items {
		items[i] = i
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := NewSlice(items)
	Bind(ctx, s)
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		if _, err := s.Next(); err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
	}
	cancel()
	if _, err := s.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next after cancel: %v, want context.Canceled", err)
	}
}

// TestBindWalksPlan: Bind reaches operators below non-binding
// intermediates (Filter does not implement ContextBinder; its Slice
// input does).
func TestBindWalksPlan(t *testing.T) {
	items := []Item{1, 2, 3, 4, 5}
	ctx, cancel := context.WithCancel(context.Background())
	plan := NewFilter(NewSlice(items), func(Item) (bool, error) { return true, nil })
	Bind(ctx, plan)
	if err := plan.Open(); err != nil {
		t.Fatal(err)
	}
	defer plan.Close()
	if _, err := plan.Next(); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := plan.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("filtered Next after cancel: %v, want context.Canceled", err)
	}
}

// TestExchangeCancellationDrainsProducers is the cancellation-driven
// analogue of the early-close leak test: cancelling the bound context
// alone — no Close, no channel close ordering — must unblock every
// producer parked in send and drain the goroutines.
func TestExchangeCancellationDrainsProducers(t *testing.T) {
	before := leakcheck.Snapshot()
	items := make([]Item, 1000)
	for i := range items {
		items[i] = i
	}
	parts := PartitionSlice(items, 8)
	ex := NewExchange(8, func(part int) (Iterator, error) {
		return NewSlice(parts[part]), nil
	})
	ex.QueueLen = 1 // park producers in send mid-stream
	ctx, cancel := context.WithCancel(context.Background())
	Bind(ctx, ex)
	if err := ex.Open(); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Next(); err != nil {
		t.Fatal(err)
	}
	cancel()
	// Producers must exit on ctx.Done alone; only then does the drain
	// below observe a closed channel. Close comes later, as teardown.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			break // leakcheck below reports with stacks
		}
		time.Sleep(2 * time.Millisecond)
	}
	leakcheck.Check(t, before+1) // +1: the exchange's closer goroutine may still be parked on wg.Wait
	if _, err := ex.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next after cancel: %v, want context.Canceled", err)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	leakcheck.Check(t, before)
}

// TestExchangeDeadline: an expired deadline surfaces as
// context.DeadlineExceeded from Next, not as Done.
func TestExchangeDeadline(t *testing.T) {
	before := leakcheck.Snapshot()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	ex := NewExchange(2, func(part int) (Iterator, error) {
		// A source that never ends: produces zeros forever.
		return &Func{NextFn: func() (Item, error) { return 0, nil }}, nil
	})
	ex.QueueLen = 1
	Bind(ctx, ex)
	if err := ex.Open(); err != nil {
		t.Fatal(err)
	}
	var err error
	for i := 0; i < 1_000_000; i++ {
		if _, err = ex.Next(); err != nil {
			break
		}
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Next past deadline: %v, want context.DeadlineExceeded", err)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	leakcheck.Check(t, before)
}
