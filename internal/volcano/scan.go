package volcano

import (
	"errors"

	"revelation/internal/expr"
	"revelation/internal/heap"
	"revelation/internal/object"
)

// HeapScan reads a heap file in physical order, decoding each record
// into a *object.Object. An optional predicate filters during the scan
// (selection pushed into the scan, as in any relational engine).
type HeapScan struct {
	File *heap.File
	Pred expr.Predicate // optional

	// buffered page worth of objects; refilled page by page so the
	// iterator does not hold pins across Next calls.
	pending []*object.Object
	nextIdx int // extent-relative page index to read next
	open    bool
}

// NewHeapScan builds a scan over f with optional predicate pred.
func NewHeapScan(f *heap.File, pred expr.Predicate) *HeapScan {
	return &HeapScan{File: f, Pred: pred}
}

// Open implements Iterator.
func (s *HeapScan) Open() error {
	s.pending = nil
	s.nextIdx = 0
	s.open = true
	return nil
}

// Next implements Iterator.
func (s *HeapScan) Next() (Item, error) {
	if !s.open {
		return nil, ErrNotOpen
	}
	for {
		if len(s.pending) > 0 {
			o := s.pending[0]
			s.pending = s.pending[1:]
			return o, nil
		}
		if s.nextIdx >= s.File.NumPages() {
			return nil, Done
		}
		if err := s.fillFromPage(s.nextIdx); err != nil {
			return nil, err
		}
		s.nextIdx++
	}
}

func (s *HeapScan) fillFromPage(idx int) error {
	var decodeErr error
	err := s.File.ScanPage(idx, func(rid heap.RID, rec []byte) bool {
		o, derr := object.Decode(rec)
		if derr != nil {
			decodeErr = derr
			return false
		}
		if s.Pred != nil && !s.Pred.Eval(o) {
			return true
		}
		s.pending = append(s.pending, o)
		return true
	})
	if decodeErr != nil {
		return decodeErr
	}
	return err
}

// Close implements Iterator.
func (s *HeapScan) Close() error {
	s.open = false
	s.pending = nil
	return nil
}

// IndexScan walks a key range of the OID index in key order, fetching
// each object through the store — the classical unclustered index scan
// whose seek behaviour motivated the assembly operator's design
// (Section 2 discusses the TID-scan/sorted-pointer family).
type IndexScan struct {
	Store    *object.Store
	From, To object.OID
	Pred     expr.Predicate // optional

	oids []object.OID
	pos  int
	open bool
}

// NewIndexScan builds an index scan over [from, to].
func NewIndexScan(store *object.Store, from, to object.OID, pred expr.Predicate) *IndexScan {
	return &IndexScan{Store: store, From: from, To: to, Pred: pred}
}

// Open implements Iterator. It materializes the qualifying OID list
// (cheap: OIDs only), deferring object fetches to Next.
func (s *IndexScan) Open() error {
	s.oids = s.oids[:0]
	s.pos = 0
	bl, ok := s.Store.Locator.(*object.BTreeLocator)
	if !ok {
		// Map locator: no ordered structure; synthesize the range by
		// probing is impossible, so reject.
		return errors.New("volcano: IndexScan requires a B-tree locator")
	}
	err := bl.Tree().Scan(uint64(s.From), uint64(s.To), func(k, v uint64) bool {
		s.oids = append(s.oids, object.OID(k))
		return true
	})
	if err != nil {
		return err
	}
	s.open = true
	return nil
}

// Next implements Iterator.
func (s *IndexScan) Next() (Item, error) {
	if !s.open {
		return nil, ErrNotOpen
	}
	for s.pos < len(s.oids) {
		oid := s.oids[s.pos]
		s.pos++
		o, err := s.Store.Get(oid)
		if err != nil {
			return nil, err
		}
		if s.Pred != nil && !s.Pred.Eval(o) {
			continue
		}
		return o, nil
	}
	return nil, Done
}

// Close implements Iterator.
func (s *IndexScan) Close() error {
	s.open = false
	s.oids = nil
	return nil
}
