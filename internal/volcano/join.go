package volcano

import (
	"errors"
	"fmt"
	"sort"

	"revelation/internal/object"
)

// Pair is the output of a binary join.
type Pair struct {
	Left, Right Item
}

// HashJoin is the classic build/probe equi-join: the right (build)
// input is drained into a hash table at Open; probes stream from the
// left input.
type HashJoin struct {
	Left, Right Iterator
	LeftKey     func(Item) (any, error)
	RightKey    func(Item) (any, error)

	table   map[any][]Item
	current []Item // matches pending for the current probe item
	probe   Item
	open    bool
}

// NewHashJoin builds a hash join with the given key extractors.
func NewHashJoin(left, right Iterator, leftKey, rightKey func(Item) (any, error)) *HashJoin {
	return &HashJoin{Left: left, Right: right, LeftKey: leftKey, RightKey: rightKey}
}

// Open implements Iterator: drains the build side.
func (j *HashJoin) Open() error {
	if err := j.Right.Open(); err != nil {
		return err
	}
	j.table = map[any][]Item{}
	for {
		item, err := j.Right.Next()
		if errors.Is(err, Done) {
			break
		}
		if err != nil {
			j.Right.Close()
			return err
		}
		k, err := j.RightKey(item)
		if err != nil {
			j.Right.Close()
			return err
		}
		j.table[k] = append(j.table[k], item)
	}
	if err := j.Right.Close(); err != nil {
		return err
	}
	if err := j.Left.Open(); err != nil {
		return err
	}
	j.open = true
	return nil
}

// Next implements Iterator.
func (j *HashJoin) Next() (Item, error) {
	if !j.open {
		return nil, ErrNotOpen
	}
	for {
		if len(j.current) > 0 {
			r := j.current[0]
			j.current = j.current[1:]
			return Pair{Left: j.probe, Right: r}, nil
		}
		item, err := j.Left.Next()
		if err != nil {
			return nil, err
		}
		k, err := j.LeftKey(item)
		if err != nil {
			return nil, err
		}
		if matches := j.table[k]; len(matches) > 0 {
			j.probe = item
			j.current = matches
		}
	}
}

// Close implements Iterator.
func (j *HashJoin) Close() error {
	j.open = false
	j.table = nil
	j.current = nil
	return j.Left.Close()
}

// NestedLoops joins by re-scanning a materialized right input for each
// left item; Match decides whether a pair joins. It covers non-equi
// predicates the hash join cannot.
type NestedLoops struct {
	Left, Right Iterator
	Match       func(l, r Item) (bool, error)

	right   []Item
	probe   Item
	rpos    int
	probing bool
	open    bool
}

// NewNestedLoops builds a nested-loops join.
func NewNestedLoops(left, right Iterator, match func(l, r Item) (bool, error)) *NestedLoops {
	return &NestedLoops{Left: left, Right: right, Match: match}
}

// Open implements Iterator.
func (j *NestedLoops) Open() error {
	right, err := Drain(j.Right)
	if err != nil {
		return err
	}
	j.right = right
	if err := j.Left.Open(); err != nil {
		return err
	}
	j.probing = false
	j.open = true
	return nil
}

// Next implements Iterator.
func (j *NestedLoops) Next() (Item, error) {
	if !j.open {
		return nil, ErrNotOpen
	}
	for {
		if !j.probing {
			item, err := j.Left.Next()
			if err != nil {
				return nil, err
			}
			j.probe = item
			j.rpos = 0
			j.probing = true
		}
		for j.rpos < len(j.right) {
			r := j.right[j.rpos]
			j.rpos++
			ok, err := j.Match(j.probe, r)
			if err != nil {
				return nil, err
			}
			if ok {
				return Pair{Left: j.probe, Right: r}, nil
			}
		}
		j.probing = false
	}
}

// Close implements Iterator.
func (j *NestedLoops) Close() error {
	j.open = false
	j.right = nil
	return j.Left.Close()
}

// PointerJoin is the pointer-based functional join of the related-work
// section: each left object carries an embedded OID in reference field
// Field; the join dereferences it through the store and emits
// Pair{parent, child}. Objects whose reference is nil are dropped
// (inner-join semantics).
//
// Mode selects the fetch discipline:
//
//   - NaivePointer fetches children in input order — the
//     object-at-a-time discipline.
//   - SortedPointer first materializes the whole pointer set, sorts it
//     by physical address, and fetches in physical order (Kooi's
//     TID-scan optimization). It trades sort space and full-input
//     blocking for short seeks — precisely the trade-off the assembly
//     operator was designed to avoid.
type PointerJoin struct {
	Input Iterator
	Store *object.Store
	Field int
	Mode  PointerJoinMode

	pairs []Pair // sorted mode: fully materialized output
	pos   int
	open  bool
}

// PointerJoinMode selects the pointer join discipline.
type PointerJoinMode int

// Pointer join modes.
const (
	NaivePointer PointerJoinMode = iota
	SortedPointer
)

// NewPointerJoin builds a pointer join on reference field `field`.
func NewPointerJoin(in Iterator, store *object.Store, field int, mode PointerJoinMode) *PointerJoin {
	return &PointerJoin{Input: in, Store: store, Field: field, Mode: mode}
}

// Open implements Iterator.
func (j *PointerJoin) Open() error {
	if err := j.Input.Open(); err != nil {
		return err
	}
	j.pairs = nil
	j.pos = 0
	j.open = true
	if j.Mode == NaivePointer {
		return nil
	}
	// Sorted mode: block, collect (parent, oid, rid), sort by physical
	// location, fetch in that order.
	type ref struct {
		parent *object.Object
		oid    object.OID
		page   uint32
		slot   uint16
	}
	var refs []ref
	for {
		item, err := j.Input.Next()
		if errors.Is(err, Done) {
			break
		}
		if err != nil {
			return err
		}
		o, ok := item.(*object.Object)
		if !ok {
			return typeError("pointer join", item)
		}
		oid, err := refField(o, j.Field)
		if err != nil {
			return err
		}
		if oid.IsNil() {
			continue
		}
		rid, found, err := j.Store.WhereIs(oid)
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("volcano: pointer join: dangling reference %v", oid)
		}
		refs = append(refs, ref{parent: o, oid: oid, page: uint32(rid.Page), slot: uint16(rid.Slot)})
	}
	sort.Slice(refs, func(a, b int) bool {
		if refs[a].page != refs[b].page {
			return refs[a].page < refs[b].page
		}
		return refs[a].slot < refs[b].slot
	})
	for _, r := range refs {
		child, err := j.Store.Get(r.oid)
		if err != nil {
			return err
		}
		j.pairs = append(j.pairs, Pair{Left: r.parent, Right: child})
	}
	return nil
}

// Next implements Iterator.
func (j *PointerJoin) Next() (Item, error) {
	if !j.open {
		return nil, ErrNotOpen
	}
	if j.Mode == SortedPointer {
		if j.pos >= len(j.pairs) {
			return nil, Done
		}
		p := j.pairs[j.pos]
		j.pos++
		return p, nil
	}
	for {
		item, err := j.Input.Next()
		if err != nil {
			return nil, err
		}
		o, ok := item.(*object.Object)
		if !ok {
			return nil, typeError("pointer join", item)
		}
		oid, err := refField(o, j.Field)
		if err != nil {
			return nil, err
		}
		if oid.IsNil() {
			continue
		}
		child, err := j.Store.Get(oid)
		if err != nil {
			return nil, err
		}
		return Pair{Left: o, Right: child}, nil
	}
}

// Close implements Iterator.
func (j *PointerJoin) Close() error {
	j.open = false
	j.pairs = nil
	return j.Input.Close()
}

func refField(o *object.Object, field int) (object.OID, error) {
	if field < 0 || field >= len(o.Refs) {
		return object.NilOID, fmt.Errorf("volcano: object %v has no reference field %d", o.OID, field)
	}
	return o.Refs[field], nil
}
