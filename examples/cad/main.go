// CAD bill-of-materials: the engineering-design workload that motivates
// the paper's sharing machinery (Section 5, Section 6.4). Thousands of
// assemblies reference a small catalog of standard parts — fasteners,
// bearings — so the same sub-objects are shared by many complex
// objects. The sharing statistics in the template let the assembly
// operator build each standard part once, keep it buffered, and link
// it by reference count instead of refetching.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"revelation"
	"revelation/internal/assembly"
	"revelation/internal/stats"
	"revelation/internal/volcano"
)

const (
	assemblies    = 1500
	standardParts = 40 // tiny shared catalog: heavy sharing
)

func main() {
	eng, err := revelation.New(revelation.Config{
		DataPages:   2048,
		BufferPages: 96, // much smaller than the database
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	asmCls := eng.Catalog().MustDefine(&revelation.Class{
		Name: "Assembly", NumInts: 2, NumRefs: 4,
		IntNames: []string{"id", "mass"},
		RefNames: []string{"housing", "fastener", "bearing", "spec"},
	})
	partCls := eng.Catalog().MustDefine(&revelation.Class{
		Name: "Part", NumInts: 2, NumRefs: 0,
		IntNames: []string{"partno", "unitCost"},
	})

	rng := rand.New(rand.NewSource(3))
	next := revelation.OID(1)
	put := func(o *revelation.Object) revelation.OID {
		if _, err := eng.Put(o); err != nil {
			log.Fatal(err)
		}
		return o.OID
	}

	// The shared standard-parts catalog.
	var fasteners, bearings []revelation.OID
	for i := 0; i < standardParts; i++ {
		fasteners = append(fasteners, put(&revelation.Object{
			OID: next, Class: partCls.ID, Ints: []int32{int32(1000 + i), int32(2 + i%7)}}))
		next++
		bearings = append(bearings, put(&revelation.Object{
			OID: next, Class: partCls.ID, Ints: []int32{int32(2000 + i), int32(15 + i%11)}}))
		next++
	}

	// Each assembly: a unique housing and spec, plus shared fastener
	// and bearing drawn from the catalog.
	var roots []revelation.OID
	for i := 0; i < assemblies; i++ {
		housing := put(&revelation.Object{OID: next, Class: partCls.ID,
			Ints: []int32{int32(i), int32(50 + rng.Intn(100))}})
		next++
		spec := put(&revelation.Object{OID: next, Class: partCls.ID,
			Ints: []int32{int32(i), 0}})
		next++
		roots = append(roots, put(&revelation.Object{
			OID: next, Class: asmCls.ID,
			Ints: []int32{int32(i), int32(rng.Intn(500))},
			Refs: []revelation.OID{
				housing,
				fasteners[rng.Intn(len(fasteners))],
				bearings[rng.Intn(len(bearings))],
				spec,
			},
		}))
		next++
	}

	// Template: instead of hand-annotating the sharing statistics, run
	// the statistics collector (Section 5's annotations, derived from
	// data): it marks the fastener and bearing components shared and
	// measures their degrees; housing and spec stay unshared.
	tmpl := &revelation.Template{
		Name: "Assembly", Class: asmCls.ID, RefField: -1,
		Children: []*revelation.Template{
			{Name: "Housing", Class: partCls.ID, RefField: 0, Required: true},
			{Name: "Fastener", Class: partCls.ID, RefField: 1, Required: true},
			{Name: "Bearing", Class: partCls.ID, RefField: 2, Required: true},
			{Name: "Spec", Class: partCls.ID, RefField: 3, Required: true},
		},
	}
	reports, err := stats.CollectSharing(eng.Store, tmpl, roots, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("statistics collector (Section 5 template annotations):")
	for _, r := range reports {
		fmt.Printf("  %-10s %5d refs over %4d distinct objects -> degree %.3f shared=%v\n",
			r.Node.Name, r.Refs, r.Distinct, r.Degree, r.Node.Shared)
	}
	fmt.Println()
	degree := float64(standardParts) / float64(assemblies)

	run := func(label string, useStats bool) []*revelation.Instance {
		if err := eng.ResetMeasurements(true); err != nil {
			log.Fatal(err)
		}
		items := make([]volcano.Item, len(roots))
		for i, r := range roots {
			items[i] = r
		}
		op := assembly.New(volcano.NewSlice(items), eng.Store, tmpl, assembly.Options{
			Window:          50,
			Scheduler:       assembly.Elevator,
			UseSharingStats: useStats,
		})
		out, err := volcano.Drain(op)
		if err != nil {
			log.Fatal(err)
		}
		st := eng.DeviceStats()
		ops := op.Stats()
		fmt.Printf("%-28s %5d assembled, %6d fetches, %5d shared links, %6d reads, avg seek %6.1f\n",
			label, ops.Assembled, ops.Fetched, ops.SharedLinks, st.Reads, st.AvgSeekPerRead())
		insts := make([]*revelation.Instance, len(out))
		for i, it := range out {
			insts[i] = it.(*revelation.Instance)
		}
		return insts
	}

	fmt.Printf("CAD bill-of-materials: %d assemblies over %d standard parts (degree %.3f)\n\n",
		assemblies, standardParts, degree)
	plain := run("without sharing statistics", false)
	shared := run("with sharing statistics", true)
	fmt.Println()
	fmt.Println("the saved fetches are mostly buffer requests, and the paper's footnote 5")
	fmt.Println("is the point: \"even buffer hits can be expensive, since a table must be")
	fmt.Println("searched while protected against concurrent update\" — the shared table")
	fmt.Println("links assembled components by pointer, skipping the buffer entirely, and")
	fmt.Println("guarantees each shared part is materialized once, not once per assembly.")

	// Total cost roll-up over the assembled complex objects — complex
	// object traversal is pure pointer chasing now.
	total := func(insts []*revelation.Instance) int64 {
		var sum int64
		for _, inst := range insts {
			for _, c := range inst.Children {
				sum += int64(c.Object.Ints[1])
			}
		}
		return sum
	}
	a, b := total(plain), total(shared)
	fmt.Printf("\nBOM cost roll-up: %d (both strategies must agree: %v)\n", a, a == b)
	if a != b {
		log.Fatal("strategies disagree")
	}
}
