// Stacked assembly (paper Section 7, Figure 17): combining bottom-up
// and top-down assembly by stacking two assembly operators. The first
// operator assembles the B–D sub-objects of every complex object
// bottom-up; the second fetches the A and C objects top-down and links
// them with the sub-assemblies instead of refetching.
package main

import (
	"fmt"
	"log"

	"revelation"
	"revelation/internal/assembly"
	"revelation/internal/gen"
	"revelation/internal/volcano"
)

func main() {
	// The paper's benchmark database: 3-level binary complex objects
	// under inter-object clustering.
	db, err := gen.Build(gen.Config{
		NumComplexObjects: 800,
		Clustering:        gen.InterObject,
		Seed:              21,
	})
	if err != nil {
		log.Fatal(err)
	}

	full := db.Template     // A -> (B, C), B -> (D, E), C -> (F, G)
	sub := full.Children[0] // the B subtree

	// Sub-roots for the bottom-up pass: the B component of each tree.
	var subRoots []volcano.Item
	for _, root := range db.Roots {
		o, err := db.Store.Get(root)
		if err != nil {
			log.Fatal(err)
		}
		subRoots = append(subRoots, o.Refs[0])
	}
	if err := db.Pool.EvictAll(); err != nil {
		log.Fatal(err)
	}
	db.Device.ResetStats()

	plan, err := assembly.NewStacked(assembly.StackedConfig{
		Store:    db.Store,
		Full:     full,
		Sub:      sub,
		SubRoots: volcano.NewSlice(subRoots),
		// The upward link from a B sub-assembly to its enclosing
		// complex object's root; a real system would keep this in an
		// index or a back-reference field.
		EnclosingRoot: func(in *assembly.Instance) (revelation.OID, error) {
			return db.RootOf[in.OID()], nil
		},
		BottomUp: assembly.Options{Window: 25, Scheduler: assembly.Elevator},
		TopDown:  assembly.Options{Window: 25, Scheduler: assembly.Elevator},
	})
	if err != nil {
		log.Fatal(err)
	}

	items, err := volcano.Drain(plan)
	if err != nil {
		log.Fatal(err)
	}
	stacked := db.Device.Stats()

	// Verify every complex object is complete and correctly swizzled.
	for _, it := range items {
		inst := it.(*revelation.Instance)
		if inst.Size() != 7 {
			log.Fatalf("complex object %v has %d components", inst.OID(), inst.Size())
		}
		inst.Walk(func(in *revelation.Instance) {
			for slot, ct := range in.Node.Children {
				if in.Children[slot].OID() != in.Object.Refs[ct.RefField] {
					log.Fatalf("bad swizzle under %v", in.OID())
				}
			}
		})
	}
	fmt.Printf("stacked assembly (Fig. 17): %d complex objects via bottom-up B/D pass + top-down A/C pass\n", len(items))
	fmt.Printf("  %d reads, avg seek %.1f pages\n", stacked.Reads, stacked.AvgSeekPerRead())

	// Compare with a single top-down operator doing everything.
	if err := db.Pool.EvictAll(); err != nil {
		log.Fatal(err)
	}
	db.Device.ResetStats()
	roots := make([]volcano.Item, len(db.Roots))
	for i, r := range db.Roots {
		roots[i] = r
	}
	single := assembly.New(volcano.NewSlice(roots), db.Store, full,
		assembly.Options{Window: 25, Scheduler: assembly.Elevator})
	n, err := volcano.Count(single)
	if err != nil {
		log.Fatal(err)
	}
	st := db.Device.Stats()
	fmt.Printf("single top-down operator:   %d complex objects, %d reads, avg seek %.1f pages\n",
		n, st.Reads, st.AvgSeekPerRead())
	fmt.Println("\nboth plans produce the same complex objects; stacking exists for plans")
	fmt.Println("that need bottom-up order (e.g. when sub-objects arrive from another operator).")
}
