// Genealogy: the paper's running example (Figures 2 and 3) — "retrieve
// all people that live close to (live in the same city as) their
// father" — evaluated three ways:
//
//  1. naive object-at-a-time traversal, the way a compiled method runs;
//  2. the assembly operator with elevator scheduling and a window; and
//  3. selective assembly, pushing the same-city test into the operator
//     so failing complex objects abort as early as possible.
//
// The same answers come out each time; the disk behaviour does not.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"revelation"
	"revelation/internal/expr"
)

const people = 2000

func main() {
	// A 64-page buffer — far smaller than the ~300-page database — so
	// the read counts reflect real disk behaviour, not cache warmth.
	eng, err := revelation.New(revelation.Config{
		DataPages:   people * 3 / 9 * 2,
		BufferPages: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	person := eng.Catalog().MustDefine(&revelation.Class{
		Name: "Person", NumInts: 2, NumRefs: 2,
		IntNames: []string{"id", "age"},
		RefNames: []string{"father", "residence"},
	})
	residence := eng.Catalog().MustDefine(&revelation.Class{
		Name: "Residence", NumInts: 2, NumRefs: 0,
		IntNames: []string{"id", "city"},
	})

	// Build the population: each person has a residence in one of 50
	// cities and (for the queried generation) a father with his own
	// residence. Objects are stored in random order — an unclustered
	// database, the hardest case for naive traversal.
	rng := rand.New(rand.NewSource(7))
	var all []*revelation.Object
	var roots []revelation.OID
	next := revelation.OID(1)
	newObj := func(cls *revelation.Class, ints []int32, refs []revelation.OID) *revelation.Object {
		o := &revelation.Object{OID: next, Class: cls.ID, Ints: ints, Refs: refs}
		next++
		all = append(all, o)
		return o
	}
	for i := 0; i < people; i++ {
		cityChild := int32(rng.Intn(50))
		cityFather := int32(rng.Intn(50))
		if rng.Intn(4) == 0 { // a quarter of the children live close
			cityFather = cityChild
		}
		fRes := newObj(residence, []int32{int32(i), cityFather}, nil)
		cRes := newObj(residence, []int32{int32(i), cityChild}, nil)
		father := newObj(person, []int32{int32(i), 55 + int32(rng.Intn(30))},
			[]revelation.OID{0, fRes.OID})
		child := newObj(person, []int32{int32(i), 20 + int32(rng.Intn(30))},
			[]revelation.OID{father.OID, cRes.OID})
		roots = append(roots, child.OID)
	}
	rng.Shuffle(len(all), func(a, b int) { all[a], all[b] = all[b], all[a] })
	for _, o := range all {
		if _, err := eng.Put(o); err != nil {
			log.Fatal(err)
		}
	}

	// The paper's Figure 2 complex object as a template.
	tmpl := &revelation.Template{
		Name: "Person", Class: person.ID, RefField: -1,
		Children: []*revelation.Template{
			{Name: "Father", Class: person.ID, RefField: 0, Required: true,
				Children: []*revelation.Template{
					{Name: "FatherResidence", Class: residence.ID, RefField: 1, Required: true},
				}},
			{Name: "Residence", Class: residence.ID, RefField: 1, Required: true},
		},
	}

	livesClose := func(inst *revelation.Instance) bool {
		child := inst.ChildByName("Residence")
		father := inst.ChildByName("Father").ChildByName("FatherResidence")
		return child.Object.Ints[1] == father.Object.Ints[1]
	}

	// --- 1. Naive: object-at-a-time, method-traversal order.
	if err := eng.ResetMeasurements(true); err != nil {
		log.Fatal(err)
	}
	matched := 0
	for _, root := range roots {
		c, err := eng.Get(root)
		if err != nil {
			log.Fatal(err)
		}
		father, err := eng.Get(c.Refs[0])
		if err != nil {
			log.Fatal(err)
		}
		fRes, err := eng.Get(father.Refs[1])
		if err != nil {
			log.Fatal(err)
		}
		cRes, err := eng.Get(c.Refs[1])
		if err != nil {
			log.Fatal(err)
		}
		if cRes.Ints[1] == fRes.Ints[1] {
			matched++
		}
	}
	naive := eng.DeviceStats()
	fmt.Printf("naive object-at-a-time:  %4d matches, %6d reads, avg seek %7.1f pages\n",
		matched, naive.Reads, naive.AvgSeekPerRead())

	// --- 2. Set-oriented assembly, then select in memory.
	if err := eng.ResetMeasurements(true); err != nil {
		log.Fatal(err)
	}
	instances, err := eng.AssembleAll(roots, tmpl, revelation.Options{
		Window:    50,
		Scheduler: revelation.Elevator,
	})
	if err != nil {
		log.Fatal(err)
	}
	matched2 := 0
	for _, inst := range instances {
		if livesClose(inst) {
			matched2++
		}
	}
	asm := eng.DeviceStats()
	fmt.Printf("assembly + select:       %4d matches, %6d reads, avg seek %7.1f pages\n",
		matched2, asm.Reads, asm.AvgSeekPerRead())

	// --- 3. Selective assembly: the query is restricted to one city
	// ("the state of Oregon" example in Section 4): push the highly
	// selective residence test into the template, so the operator
	// fetches the residence first and abandons everything else.
	const wantCity = 13
	sel := tmpl.Clone()
	sel.FindByName("Residence").Pred = expr.IntCmp{
		Field: 1, Op: expr.EQ, Value: wantCity, Sel: 1.0 / 50,
	}
	sel.FindByName("FatherResidence").Pred = expr.IntCmp{
		Field: 1, Op: expr.EQ, Value: wantCity, Sel: 1.0 / 50,
	}
	if err := eng.ResetMeasurements(true); err != nil {
		log.Fatal(err)
	}
	restricted, err := eng.AssembleAll(roots, sel, revelation.Options{
		Window:         50,
		Scheduler:      revelation.Elevator,
		PredicateFirst: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	selSt := eng.DeviceStats()
	fmt.Printf("selective assembly:      %4d matches, %6d reads, avg seek %7.1f pages (city %d only)\n",
		len(restricted), selSt.Reads, selSt.AvgSeekPerRead(), wantCity)

	if matched != matched2 {
		log.Fatalf("answer mismatch: naive %d, assembly %d", matched, matched2)
	}
	check := 0
	for _, inst := range restricted {
		if !livesClose(inst) || inst.ChildByName("Residence").Object.Ints[1] != wantCity {
			log.Fatal("selective assembly emitted a non-matching person")
		}
		check++
	}
	fmt.Printf("\nall three strategies agree; selective assembly verified %d qualifying people\n", check)
}
