// Reveal: the paper's Figure 1 flow in miniature. A query over a set
// of complex objects either runs naively inside the "run-time system"
// (object-at-a-time traversal, the compiled-method order) or is
// revealed: rewritten into a physical plan whose data preparation is
// the assembly operator, with predicates pushed into the template.
// The example prints the revealed plan, runs both, verifies they
// agree, and compares their disk behaviour.
package main

import (
	"fmt"
	"log"

	"revelation"
	"revelation/internal/expr"
	"revelation/internal/gen"
)

func main() {
	// The paper's benchmark database: 2000 complex objects, unclustered,
	// with a modest buffer so reads mean something.
	db, err := gen.Build(gen.Config{
		NumComplexObjects: 2000,
		Clustering:        gen.Unclustered,
		Seed:              19,
		BufferPages:       128,
	})
	if err != nil {
		log.Fatal(err)
	}
	eng := &revelation.Engine{Device: db.Device, Pool: db.Pool, Store: db.Store}

	// "Retrieve the complex objects whose G leaf scores under 150 and
	// whose root outranks its D leaf" — the G test is algebraic and
	// pushable; the root-vs-D comparison is residual.
	q := &revelation.Query{
		Template: db.Template,
		Roots:    db.Roots,
		NodePreds: map[string]revelation.Predicate{
			"G": expr.IntCmp{Field: 1, Op: expr.LT, Value: 150, Sel: 0.15},
		},
		Where: func(in *revelation.Instance) bool {
			d := in.Children[0].Children[0]
			return in.Object.Ints[1] > d.Object.Ints[1]
		},
	}

	opts := revelation.Options{Window: 50, Scheduler: revelation.Elevator}
	plan, err := eng.Reveal(q, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("revealed physical plan:")
	fmt.Print(indent(revelation.Explain(plan)))

	// Naive execution.
	if err := eng.ResetMeasurements(true); err != nil {
		log.Fatal(err)
	}
	naive, err := eng.NaiveExec(q)
	if err != nil {
		log.Fatal(err)
	}
	ns := eng.DeviceStats()

	// Revealed execution.
	if err := eng.ResetMeasurements(true); err != nil {
		log.Fatal(err)
	}
	revealed, err := eng.RevealExec(q, opts)
	if err != nil {
		log.Fatal(err)
	}
	rs := eng.DeviceStats()

	fmt.Printf("\nnaive:    %4d results, %6d reads, avg seek %7.1f pages\n",
		len(naive), ns.Reads, ns.AvgSeekPerRead())
	fmt.Printf("revealed: %4d results, %6d reads, avg seek %7.1f pages\n",
		len(revealed), rs.Reads, rs.AvgSeekPerRead())

	if len(naive) != len(revealed) {
		log.Fatalf("plans disagree: %d vs %d results", len(naive), len(revealed))
	}
	got := map[revelation.OID]bool{}
	for _, in := range revealed {
		got[in.OID()] = true
	}
	for _, in := range naive {
		if !got[in.OID()] {
			log.Fatalf("revealed plan missing %v", in.OID())
		}
	}
	fmt.Printf("\nboth executions returned the same %d complex objects\n", len(naive))
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "  " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			if cur != "" {
				lines = append(lines, cur)
			}
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}
