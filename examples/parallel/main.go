// Parallel assembly (paper Section 7): the exchange operator
// encapsulates parallelism, so assembly clones run over disjoint
// partitions of the root references without code changes.
//
// The example shows both sides of the Section 7 discussion:
//
//   - with round-robin partitions every clone's elevator sweeps the
//     same page range, the sweeps stay synchronized, and seek cost
//     holds up;
//   - with range partitions each clone sweeps its own disk region, the
//     interleaved requests ping-pong between regions ("each assumes
//     sole control of the device"), and seek cost degrades;
//   - the proposed remedy, a server per device (disk.Server), re-batches
//     all clients' outstanding requests into one SCAN order.
package main

import (
	"fmt"
	"log"
	"runtime"
	"sort"
	"time"

	"revelation"
	"revelation/internal/assembly"
	"revelation/internal/disk"
	"revelation/internal/gen"
	"revelation/internal/volcano"
)

func main() {
	db, err := gen.Build(gen.Config{
		NumComplexObjects: 1000,
		Clustering:        gen.Unclustered,
		Seed:              5,
	})
	if err != nil {
		log.Fatal(err)
	}

	runParts := func(parts [][]volcano.Item) (int, disk.Stats) {
		if err := db.Pool.EvictAll(); err != nil {
			log.Fatal(err)
		}
		db.Device.ResetStats()
		db.Device.ResetHead()
		plan := volcano.NewExchange(len(parts), func(part int) (volcano.Iterator, error) {
			return assembly.New(volcano.NewSlice(parts[part]), db.Store, db.Template,
				assembly.Options{Window: 25, Scheduler: assembly.Elevator}), nil
		})
		n, err := volcano.Count(plan)
		if err != nil {
			log.Fatal(err)
		}
		return n, db.Device.Stats()
	}

	items := make([]volcano.Item, len(db.Roots))
	for i, r := range db.Roots {
		items[i] = r
	}

	fmt.Println("parallel assembly over one shared device (unclustered, 1000 complex objects):")
	fmt.Println("\nround-robin partitions (clones sweep the same range, staying in step):")
	for _, degree := range []int{1, 2, 4, 8} {
		n, st := runParts(volcano.PartitionSlice(items, degree))
		fmt.Printf("  degree %d: %4d assembled, %6d reads, avg seek %7.1f pages\n",
			degree, n, st.Reads, st.AvgSeekPerRead())
	}

	fmt.Println("\nrange partitions (each clone owns a disk region; queues fight for the head):")
	for _, degree := range []int{1, 2, 4, 8} {
		n, st := runParts(rangePartition(db, items, degree))
		fmt.Printf("  degree %d: %4d assembled, %6d reads, avg seek %7.1f pages\n",
			degree, n, st.Reads, st.AvgSeekPerRead())
	}
	fmt.Println("\n(simulated reads take microseconds, so clones rarely interleave and the")
	fmt.Println("contention stays mild; on a real device every read blocks and the queues")
	fmt.Println("interleave request by request — modeled below by yielding between reads)")

	fmt.Println("\nindependent queues vs the Section 7 remedy, a server per device that")
	fmt.Println("re-batches all clients' outstanding requests into SCAN order (disk.Server):")
	demoServerSweep(db)

	// Verify parallel output equals serial output as a set.
	serial, err := assembledSet(db, 1)
	if err != nil {
		log.Fatal(err)
	}
	parallel, err := assembledSet(db, 4)
	if err != nil {
		log.Fatal(err)
	}
	if len(serial) != len(parallel) {
		log.Fatalf("parallel produced %d, serial %d", len(parallel), len(serial))
	}
	for oid := range serial {
		if !parallel[oid] {
			log.Fatalf("parallel output missing %v", oid)
		}
	}
	fmt.Printf("\nparallel output verified: same %d complex objects as serial execution\n", len(serial))
}

// rangePartition splits the roots into contiguous physical ranges, so
// each clone works a different area of the disk.
func rangePartition(db *gen.Database, items []volcano.Item, n int) [][]volcano.Item {
	sorted := append([]volcano.Item(nil), items...)
	pageOf := func(it volcano.Item) uint32 {
		rid, _, err := db.Store.WhereIs(it.(revelation.OID))
		if err != nil {
			log.Fatal(err)
		}
		return uint32(rid.Page)
	}
	sort.Slice(sorted, func(a, b int) bool { return pageOf(sorted[a]) < pageOf(sorted[b]) })
	out := make([][]volcano.Item, n)
	chunk := (len(sorted) + n - 1) / n
	for i, it := range sorted {
		out[i/chunk] = append(out[i/chunk], it)
	}
	return out
}

func assembledSet(db *gen.Database, degree int) (map[revelation.OID]bool, error) {
	if err := db.Pool.EvictAll(); err != nil {
		return nil, err
	}
	plan := assembly.NewParallel(db.Roots, db.Store, db.Template,
		assembly.Options{Window: 10, Scheduler: assembly.Elevator}, degree)
	items, err := volcano.Drain(plan)
	if err != nil {
		return nil, err
	}
	out := map[revelation.OID]bool{}
	for _, it := range items {
		out[it.(*revelation.Instance).OID()] = true
	}
	return out, nil
}

func demoServerSweep(db *gen.Database) {
	dev := db.Device
	read := func(direct bool, srv *disk.Server) float64 {
		dev.ResetStats()
		dev.ResetHead()
		done := make(chan struct{})
		for c := 0; c < 32; c++ {
			go func(c int) {
				defer func() { done <- struct{}{} }()
				buf := make([]byte, dev.PageSize())
				for i := 0; i < 50; i++ {
					p := disk.PageID((c*1327 + i*613) % dev.NumPages())
					var err error
					if direct {
						err = dev.ReadPage(p, buf)
						// A real read blocks its issuer; yield so the
						// eight queues interleave per request.
						runtime.Gosched()
					} else {
						err = srv.Read(p, buf)
					}
					if err != nil {
						log.Fatal(err)
					}
				}
			}(c)
		}
		for c := 0; c < 32; c++ {
			<-done
		}
		return dev.Stats().AvgSeekPerRead()
	}
	direct := read(true, nil)
	srv := disk.NewServer(dev)
	srv.SetBatchWait(500 * time.Microsecond)
	defer srv.Close()
	served := read(false, srv)
	fmt.Printf("  32 clients, 1600 scattered reads, independent queues: avg seek %7.1f pages\n", direct)
	fmt.Printf("  same workload through the per-device server:        avg seek %7.1f pages\n", served)
}
