// Quickstart: store a handful of complex objects, assemble them with
// the assembly operator, and look at the seek statistics — the
// smallest end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"

	"revelation"
)

func main() {
	// 1. An in-memory engine: simulated 1 KB-page disk, buffer pool,
	// heap file, OID locator.
	eng, err := revelation.New(revelation.Config{DataPages: 64})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// 2. A schema: documents reference an author and an appendix.
	cat := eng.Catalog()
	doc := cat.MustDefine(&revelation.Class{
		Name: "Document", NumInts: 2, NumRefs: 2,
		IntNames: []string{"id", "pages"},
		RefNames: []string{"author", "appendix"},
	})
	person := cat.MustDefine(&revelation.Class{
		Name: "Person", NumInts: 2, NumRefs: 0,
		IntNames: []string{"id", "age"},
	})
	appendix := cat.MustDefine(&revelation.Class{
		Name: "Appendix", NumInts: 2, NumRefs: 0,
		IntNames: []string{"id", "pages"},
	})

	// 3. Ten documents, each its own little complex object.
	var roots []revelation.OID
	next := revelation.OID(1)
	for i := 0; i < 10; i++ {
		au := &revelation.Object{OID: next, Class: person.ID, Ints: []int32{int32(i), 30 + int32(i)}}
		next++
		ap := &revelation.Object{OID: next, Class: appendix.ID, Ints: []int32{int32(i), 5 * int32(i)}}
		next++
		d := &revelation.Object{
			OID: next, Class: doc.ID,
			Ints: []int32{int32(i), 100 + int32(i)},
			Refs: []revelation.OID{au.OID, ap.OID},
		}
		next++
		for _, o := range []*revelation.Object{au, ap, d} {
			if _, err := eng.Put(o); err != nil {
				log.Fatal(err)
			}
		}
		roots = append(roots, d.OID)
	}

	// 4. A template mirrors the complex object's shape.
	tmpl := &revelation.Template{
		Name: "Document", Class: doc.ID, RefField: -1,
		Children: []*revelation.Template{
			{Name: "Author", Class: person.ID, RefField: 0, Required: true},
			{Name: "Appendix", Class: appendix.ID, RefField: 1, Required: true},
		},
	}

	// 5. Assemble the whole set with a sliding window and elevator
	// scheduling; start measurements cold so the numbers mean
	// something.
	if err := eng.ResetMeasurements(true); err != nil {
		log.Fatal(err)
	}
	instances, err := eng.AssembleAll(roots, tmpl, revelation.Options{
		Window:    5,
		Scheduler: revelation.Elevator,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 6. Assembled complex objects traverse by following Go pointers —
	// the OIDs were swizzled away.
	for _, inst := range instances {
		author := inst.ChildByName("Author")
		app := inst.ChildByName("Appendix")
		fmt.Printf("document %2d: %3d pages, author age %2d, appendix %2d pages\n",
			inst.Object.Ints[0], inst.Object.Ints[1],
			author.Object.Ints[1], app.Object.Ints[1])
	}

	st := eng.DeviceStats()
	fmt.Printf("\nassembled %d complex objects: %d page reads, average seek %.1f pages\n",
		len(instances), st.Reads, st.AvgSeekPerRead())
}
