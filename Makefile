GO ?= go

.PHONY: all check build vet test test-race bench figures trace-demo examples cover clean

all: check

# The full gate: everything CI would run.
check: build vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# One testing.B bench per paper figure at the repo root, plus the
# substrate micro-benchmarks in each package.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every figure of the paper's evaluation at full scale.
figures:
	$(GO) run ./cmd/asmbench -figure all

# End-to-end observability demo: record a traced benchmark run, then
# replay the trace and verify it reconstructs the reported counters.
trace-demo:
	$(GO) run ./cmd/asmbench -figure fig13c -scale 0.1 -trace trace.jsonl
	$(GO) run ./cmd/asmtrace trace.jsonl

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/genealogy
	$(GO) run ./examples/cad
	$(GO) run ./examples/stacked
	$(GO) run ./examples/parallel
	$(GO) run ./examples/reveal

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt db.pages db.manifest trace.jsonl
