GO ?= go

.PHONY: all check build vet test test-race race-core chaos-test net-chaos-test shard-chaos-test fleet-chaos-test crash-test fuzz-smoke bench figures suite suite-smoke trace-demo tracez-smoke serve-demo examples cover clean

all: check

# The fast gate: what CI's main job runs on every push.
check: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# The concurrency-sensitive packages under the race detector — the
# layers a live metrics scraper reads while workers mutate (CI's
# second job; test-race covers everything but takes much longer).
race-core:
	$(GO) test -race ./internal/trace ./internal/metrics ./internal/buffer ./internal/volcano ./internal/serve

# The query-lifecycle chaos tests under the race detector: concurrent
# queries with random-point cancellation, goroutine-leak and
# pin/reservation-leak checks, and per-query three-way agreement.
# -count=2 reruns them so cross-run state leaks surface too.
chaos-test:
	$(GO) test -race -count=2 -run 'TestChaos|TestCancel|TestDeadline|TestExchangeCancellation|TestExchangeDeadline|TestTwoQueriesTinyPool|TestQuery' ./internal/bench ./internal/assembly ./internal/volcano ./internal/buffer ./internal/serve

# The networked-page-service chaos suite under the race detector:
# kill-the-primary mid-query with failover to a WAL-shipped replica,
# replica crash/reconnect convergence, hedged reads against seeded
# stalls, and client reconnects — all with goroutine-leak checks.
# -count=2 reruns them so cross-run state leaks surface too.
net-chaos-test:
	$(GO) test -race -count=2 ./internal/pagesvc

# The sharded-fleet chaos suite under the race detector: kill one
# shard's primary mid-query and finish byte-identical via its replica
# (breaker trip + LSN-guarded failover), and brown out a shard with no
# replica to check degraded-mode assembly skips exactly the poisoned
# objects under a per-query retry budget. -count=2 reruns for cross-run
# state leaks.
shard-chaos-test:
	$(GO) test -race -count=2 ./internal/shard

# The fleet control-plane chaos suite under the race detector: kill a
# member's primary and hold it down until the controller promotes its
# WAL-shipped replica to writable (epoch-fenced, byte-identical
# queries, three-way counter agreement), live-reshard a fourth member
# in mid-query (exactly the rendezvous delta moves), and crash the
# migrator at every WAL ownership-record write point and check
# recovery converges to exactly one owner per range. -count=2 reruns
# for cross-run state leaks.
fleet-chaos-test:
	$(GO) test -race -count=2 ./internal/fleet

# The exhaustive crash-point sweep at a heavier workload than the
# tier-1 default: every write ordinal is crashed twice (clean and
# torn), recovered, and verified. CRASH_OPS scales the workload.
crash-test:
	CRASH_OPS=96 $(GO) test -run TestCrashPointSweep -v ./internal/wal

# A short coverage-guided fuzz of the slotted page (including the
# corruption op that tries to break the bounds checks) and of the
# page-service wire header decoder (malformed frames must error, never
# panic or over-allocate).
fuzz-smoke:
	$(GO) test -fuzz=FuzzPageOps -fuzztime=10s ./internal/page
	$(GO) test -fuzz=FuzzProtoDecode -fuzztime=10s ./internal/pagesvc

# One testing.B bench per paper figure at the repo root, plus the
# substrate micro-benchmarks in each package.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every figure of the paper's evaluation at full scale.
figures:
	$(GO) run ./cmd/asmbench -figure all

# Regenerate the tracked benchmark trajectory: every core scenario,
# three-way verified, written to BENCH_core.json at the repo root.
suite:
	$(GO) run ./cmd/asmsuite -suite core -v

# The CI gate for the scenario suite: the smoke subset under the race
# detector, plus the suite package's own tests, inside a time budget.
suite-smoke:
	$(GO) test -race -timeout 5m ./internal/suite
	$(GO) run -race ./cmd/asmsuite -suite smoke -out /dev/null -v

# End-to-end smoke test for per-query tracing: boot asmserve, run
# /query requests, and check /tracez shows their span trees with
# critical-path attribution (plus the slow-query log and the /statusz
# latency quantiles). Part of CI.
tracez-smoke:
	sh scripts/tracez_smoke.sh

# End-to-end observability demo: record a traced benchmark run, then
# replay the trace and verify it reconstructs the reported counters.
trace-demo:
	$(GO) run ./cmd/asmbench -figure fig13c -scale 0.1 -trace trace.jsonl
	$(GO) run ./cmd/asmtrace trace.jsonl

# Live observability demo: run the faulty workload in a loop with
# /metrics, /statusz, and pprof served on :8091.
serve-demo:
	$(GO) run ./cmd/asmserve -figure faults -scale 0.3

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/genealogy
	$(GO) run ./examples/cad
	$(GO) run ./examples/stacked
	$(GO) run ./examples/parallel
	$(GO) run ./examples/reveal

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt db.pages db.manifest trace.jsonl
