module revelation

go 1.22
