package revelation_test

// One testing.B benchmark per reproduced table/figure of the paper's
// Section 6 (plus this reproduction's ablations). Each iteration runs
// the figure's full experiment grid at a reduced scale (benchScale) so
// `go test -bench=.` stays responsive; the custom metrics report the
// paper's numbers for the headline cell of each figure. Paper-scale
// tables print via `go run ./cmd/asmbench -figure all`.

import (
	"strings"
	"testing"

	"revelation/internal/assembly"
	"revelation/internal/bench"
	"revelation/internal/gen"
	"revelation/internal/volcano"
)

// benchScale shrinks the paper's 1000–4000 complex-object databases to
// 250–1000 for iteration speed; shapes are scale-invariant.
const benchScale = 0.25

func reportFigure(b *testing.B, fig bench.Figure) {
	b.Helper()
	// Headline: the final x of the first and last series.
	for _, s := range []bench.Series{fig.Series[0], fig.Series[len(fig.Series)-1]} {
		if len(s.Y) > 0 {
			unit := strings.ReplaceAll(s.Label, " ", "-") + "_seek/read"
			b.ReportMetric(s.Y[len(s.Y)-1], unit)
		}
	}
}

func BenchmarkFig11A(b *testing.B) { benchScheduling(b, 1, 'a') }
func BenchmarkFig11B(b *testing.B) { benchScheduling(b, 1, 'b') }
func BenchmarkFig11C(b *testing.B) { benchScheduling(b, 1, 'c') }
func BenchmarkFig13A(b *testing.B) { benchScheduling(b, 50, 'a') }
func BenchmarkFig13B(b *testing.B) { benchScheduling(b, 50, 'b') }
func BenchmarkFig13C(b *testing.B) { benchScheduling(b, 50, 'c') }

func benchScheduling(b *testing.B, window int, sub byte) {
	b.Helper()
	r := bench.NewRunner()
	b.ResetTimer()
	var fig bench.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = r.FigScheduling(window, sub, benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFigure(b, fig)
}

func BenchmarkFig14(b *testing.B) {
	r := bench.NewRunner()
	b.ResetTimer()
	var fig bench.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = r.Fig14(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFigure(b, fig)
}

func BenchmarkFig15(b *testing.B) {
	r := bench.NewRunner()
	b.ResetTimer()
	var fig bench.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = r.Fig15(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFigure(b, fig)
}

func BenchmarkFig16(b *testing.B) {
	r := bench.NewRunner()
	b.ResetTimer()
	var fig bench.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = r.Fig16(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFigure(b, fig)
}

func BenchmarkWindowFootprint(b *testing.B) {
	r := bench.NewRunner()
	b.ResetTimer()
	var fig bench.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = r.WindowFootprint(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Measured peak at the largest window vs the paper's bound.
	m := fig.Series[0]
	b.ReportMetric(m.Y[len(m.Y)-1], "peak_window_pages")
	bd := fig.Series[1]
	b.ReportMetric(bd.Y[len(bd.Y)-1], "paper_bound_pages")
}

func BenchmarkBufferWindow(b *testing.B) {
	r := bench.NewRunner()
	b.ResetTimer()
	var fig bench.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = r.BufferWindow(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFigure(b, fig)
}

// BenchmarkMultiDevice runs the Section 7 striped-device exploration.
func BenchmarkMultiDevice(b *testing.B) {
	r := bench.NewRunner()
	b.ResetTimer()
	var fig bench.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = r.MultiDevice(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFigure(b, fig)
}

// BenchmarkPageBatch runs the Section 4 same-page batching ablation.
func BenchmarkPageBatch(b *testing.B) {
	r := bench.NewRunner()
	b.ResetTimer()
	var fig bench.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = r.PageBatch(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Requests per 1000 fetches, batched, intra-object clustering.
	s := fig.Series[len(fig.Series)-1]
	b.ReportMetric(s.Y[len(s.Y)-1], "batched_reqs_per_1k")
}

// BenchmarkPriorityScheduler isolates the Section 7 integrated
// (predicate-first) scheduler against the plain elevator on a
// selective query.
func BenchmarkPriorityScheduler(b *testing.B) {
	r := bench.NewRunner()
	base := bench.Experiment{
		Name:        "priority",
		DBSize:      1000,
		Clustering:  gen.Unclustered,
		Scheduler:   assembly.Elevator,
		Window:      50,
		Selectivity: 0.10,
		BufferPages: 96,
		Seed:        17,
	}
	var plain, prio bench.Result
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plain, err = r.Run(base)
		if err != nil {
			b.Fatal(err)
		}
		withPrio := base
		withPrio.PredicateFirst = true
		prio, err = r.Run(withPrio)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(plain.Stats.Fetched), "plain_fetches")
	b.ReportMetric(float64(prio.Stats.Fetched), "predfirst_fetches")
}

// BenchmarkAssemblyVsPointerJoin compares the assembly operator to the
// related-work baseline: a pointer join per reference level (naive and
// TID-sorted), assembling two-level complex objects.
func BenchmarkAssemblyVsPointerJoin(b *testing.B) {
	db, err := gen.Build(gen.Config{NumComplexObjects: 1000, Clustering: gen.Unclustered, Seed: 23})
	if err != nil {
		b.Fatal(err)
	}
	roots := make([]volcano.Item, len(db.Roots))
	for i, r := range db.Roots {
		roots[i] = r
	}
	// Two-level template: root + its two children.
	tmpl := db.Template.Clone()
	tmpl.Children[0].Children = nil
	tmpl.Children[1].Children = nil

	cold := func() {
		if err := db.Pool.EvictAll(); err != nil {
			b.Fatal(err)
		}
		db.Device.ResetStats()
		db.Device.ResetHead()
	}
	var asmSeek, naiveSeek, sortedSeek float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cold()
		op := assembly.New(volcano.NewSlice(roots), db.Store, tmpl,
			assembly.Options{Window: 50, Scheduler: assembly.Elevator})
		if _, err := volcano.Count(op); err != nil {
			b.Fatal(err)
		}
		asmSeek = db.Device.Stats().AvgSeekPerRead()

		for _, mode := range []volcano.PointerJoinMode{volcano.NaivePointer, volcano.SortedPointer} {
			cold()
			// Join root objects to child 0, then parents to child 1 —
			// the n-way pointer join the paper contrasts with
			// assembly (Section 4: "a pointer join would require at
			// least one input to be completely scanned before
			// producing a single result").
			var rootObjs []volcano.Item
			for _, r := range db.Roots {
				o, err := db.Store.Get(r)
				if err != nil {
					b.Fatal(err)
				}
				rootObjs = append(rootObjs, o)
			}
			j0 := volcano.NewPointerJoin(volcano.NewSlice(rootObjs), db.Store, 0, mode)
			left, err := volcano.Drain(j0)
			if err != nil {
				b.Fatal(err)
			}
			var parents []volcano.Item
			for _, p := range left {
				parents = append(parents, p.(volcano.Pair).Left)
			}
			j1 := volcano.NewPointerJoin(volcano.NewSlice(parents), db.Store, 1, mode)
			if _, err := volcano.Count(j1); err != nil {
				b.Fatal(err)
			}
			if mode == volcano.NaivePointer {
				naiveSeek = db.Device.Stats().AvgSeekPerRead()
			} else {
				sortedSeek = db.Device.Stats().AvgSeekPerRead()
			}
		}
	}
	b.ReportMetric(asmSeek, "assembly_seek/read")
	b.ReportMetric(naiveSeek, "naive_ptrjoin_seek/read")
	b.ReportMetric(sortedSeek, "sorted_ptrjoin_seek/read")
}
